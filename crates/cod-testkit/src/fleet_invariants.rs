//! Fleet-level invariant checkers, mirroring the per-frame battery of
//! [`crate::invariants`] one level up: whatever the workload does, the
//! serving layer must conserve sessions, respect shard capacity, starve
//! nobody, and replay bit-exactly from its seed.

use cod_cb::CbError;
use cod_fleet::{run_fleet, FleetConfig, FleetOutcome, FleetReport};

/// Checks every fleet-level safety property on a drained outcome; returns a
/// description of each violated property (empty ⇒ all held).
pub fn check_fleet_outcome(outcome: &FleetOutcome) -> Vec<String> {
    let mut violations = Vec::new();

    // Conservation: after drain no session may be pending or resident, so
    // every offered arrival is either completed or rejected, and the
    // completion list matches the ledger.
    if outcome.offered != outcome.completed + outcome.rejected {
        violations.push(format!(
            "conservation: offered {} != completed {} + rejected {}",
            outcome.offered, outcome.completed, outcome.rejected
        ));
    }
    if outcome.sessions.len() as u64 != outcome.completed {
        violations.push(format!(
            "conservation: {} session outcomes vs {} completions",
            outcome.sessions.len(),
            outcome.completed
        ));
    }
    if outcome.admitted != outcome.completed {
        violations.push(format!(
            "drain: admitted {} != completed {} (a session is still resident)",
            outcome.admitted, outcome.completed
        ));
    }

    // Capacity: no shard may ever have hosted more sessions than it has
    // slots, and nothing may have been rejected while a slot was free.
    for (i, stats) in outcome.shard_stats.iter().enumerate() {
        if stats.peak_residents > outcome.config.shard.slots {
            violations.push(format!(
                "capacity: shard {i} peaked at {} residents, capacity {}",
                stats.peak_residents, outcome.config.shard.slots
            ));
        }
    }
    if outcome.rejected_with_free_slot > 0 {
        violations.push(format!(
            "backpressure: {} arrivals rejected while a slot was free",
            outcome.rejected_with_free_slot
        ));
    }
    if outcome.peak_pending > outcome.config.max_pending {
        violations.push(format!(
            "backpressure: queue peaked at {} over the bound {}",
            outcome.peak_pending, outcome.config.max_pending
        ));
    }

    // No starvation: a session can wait in the queue at most as long as the
    // whole population ahead of it takes to drain through the fleet —
    // bounded by the queue depth plus total slots, times the longest
    // session's tick count.
    let ticks_per_session = outcome
        .sessions
        .iter()
        .map(|s| (s.frames as u64).div_ceil(outcome.config.shard.batch_frames as u64) + 1)
        .max()
        .unwrap_or(1);
    let ahead =
        (outcome.config.max_pending + outcome.config.shards * outcome.config.shard.slots) as u64;
    let wait_bound = ahead * ticks_per_session;
    for s in &outcome.sessions {
        let waited = s.admitted_tick - s.arrived_tick;
        if waited > wait_bound {
            violations.push(format!(
                "starvation: session {} ({}) queued for {waited} ticks (bound {wait_bound})",
                s.id, s.name
            ));
        }
        let running = s.completed_tick - s.admitted_tick;
        if running > ticks_per_session {
            violations.push(format!(
                "starvation: session {} ({}) resident for {running} ticks (bound {ticks_per_session})",
                s.id, s.name
            ));
        }
    }

    violations
}

/// Runs the fleet twice from the same configuration and returns both reports
/// plus the first difference between their serialized forms (`None` proves
/// the run replays byte for byte).
///
/// # Errors
///
/// Returns the first hard error raised by either run.
pub fn fleet_replay_check(
    config: &FleetConfig,
) -> Result<(FleetReport, FleetReport, Option<usize>), CbError> {
    let first = FleetReport::from_outcome(&run_fleet(config)?);
    let second = FleetReport::from_outcome(&run_fleet(config)?);
    let a = first.to_json().to_pretty();
    let b = second.to_json().to_pretty();
    let divergence = if a == b {
        None
    } else {
        Some(a.bytes().zip(b.bytes()).position(|(x, y)| x != y).unwrap_or(a.len().min(b.len())))
    };
    Ok((first, second, divergence))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_fleet::{ShardConfig, WorkloadConfig};

    fn small_config(shards: usize, seed: u64) -> FleetConfig {
        FleetConfig {
            shards,
            shard: ShardConfig { slots: 2, batch_frames: 8, pool_per_shape: 1 },
            max_pending: 4,
            workload: WorkloadConfig {
                sessions: 8,
                seed,
                base_frames: 16,
                mean_interarrival_ticks: 1,
            },
            parallel: false,
        }
    }

    #[test]
    fn a_healthy_fleet_passes_every_invariant() {
        let outcome = run_fleet(&small_config(2, 0xF1EE7)).unwrap();
        let violations = check_fleet_outcome(&outcome);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn a_saturated_fleet_still_passes_every_invariant() {
        let mut config = small_config(1, 0xBEEF);
        config.shard.slots = 1;
        config.max_pending = 1;
        config.workload.mean_interarrival_ticks = 0;
        let outcome = run_fleet(&config).unwrap();
        assert!(outcome.rejected > 0, "saturation must shed load");
        let violations = check_fleet_outcome(&outcome);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn replay_check_proves_bit_exact_reports() {
        let (first, second, divergence) = fleet_replay_check(&small_config(2, 0xC0D)).unwrap();
        assert_eq!(divergence, None, "fleet replay diverged");
        assert_eq!(first.fingerprint, second.fingerprint);
        assert_eq!(first, second);
    }

    #[test]
    fn different_seeds_produce_different_fingerprints() {
        let (a, _, _) = fleet_replay_check(&small_config(2, 1)).unwrap();
        let (b, _, _) = fleet_replay_check(&small_config(2, 2)).unwrap();
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn doctored_outcomes_are_caught() {
        let mut outcome = run_fleet(&small_config(2, 3)).unwrap();
        outcome.rejected += 1;
        assert!(!check_fleet_outcome(&outcome).is_empty(), "broken ledger must be flagged");

        let mut outcome = run_fleet(&small_config(2, 3)).unwrap();
        outcome.rejected_with_free_slot = 1;
        assert!(!check_fleet_outcome(&outcome).is_empty(), "free-slot rejection must be flagged");

        let mut outcome = run_fleet(&small_config(2, 3)).unwrap();
        if let Some(s) = outcome.sessions.first_mut() {
            s.admitted_tick = s.arrived_tick + 10_000;
            s.completed_tick = s.admitted_tick + 1;
        }
        assert!(!check_fleet_outcome(&outcome).is_empty(), "starvation must be flagged");
    }
}
