//! Deterministic fault-injection and scenario-matrix harness for the COD.
//!
//! The paper's cluster runs eight desktop PCs over a LAN, so the failures that
//! matter are distributed ones: lost, duplicated and reordered datagrams,
//! latency spikes and short partitions. This crate turns those into
//! *reproducible test inputs*, in the simulation-testing style of turmoil and
//! FoundationDB, layered on the deterministic in-process LAN of [`cod_net`]:
//!
//! * [`plans`] — named, seeded [`cod_net::FaultPlan`]s (clean, 2%/5% loss,
//!   latency spike, duplication + reordering, partition blip);
//! * [`invariants`] — cluster-wide safety properties checked after every
//!   frame: CB channel-table consistency, frame-sync lock-step monotonicity,
//!   score bounds, no-LP-starvation;
//! * [`harness`] — [`harness::run_scenario`]: a pure function from a seeded
//!   [`harness::ScenarioSpec`] to a [`crane_sim::SessionReport`] plus a
//!   frame-by-frame [`crane_sim::TelemetryTrace`]; same spec ⇒ bit-identical
//!   outcome, and [`crane_sim::TelemetryTrace::first_divergence`] pins the
//!   first differing frame when not;
//! * [`matrix`] — the operator x GPU x fault-plan x cluster-size sweep and its
//!   machine-readable `SCENARIOS_cod.json` summary (run by the
//!   `scenario_matrix` binary; `--quick` in CI);
//! * [`fleet_invariants`] — the same idea one level up, for the `cod-fleet`
//!   serving layer: session conservation, shard capacity, no starvation, and
//!   bit-exact `FLEET_cod.json` replay from a fixed seed.
//!
//! Reproducing a failure is always the same recipe: take the `(sim_seed,
//! fault_seed)` pair printed with the scenario, rebuild the spec, re-run.
//!
//! ```
//! use cod_net::FaultPlan;
//! use cod_testkit::harness::{run_scenario, ScenarioSpec};
//! use crane_sim::{OperatorKind, SimulatorConfig};
//!
//! let config = SimulatorConfig {
//!     operator: OperatorKind::Idle,
//!     display_width: 64,
//!     display_height: 48,
//!     ..SimulatorConfig::default()
//! };
//! let spec = ScenarioSpec::new("smoke", config, 20)
//!     .with_fault_plan(FaultPlan::seeded(7).with_drop_probability(0.05));
//! let outcome = run_scenario(&spec).unwrap();
//! assert!(outcome.passed(), "{:?}", outcome.violations);
//! assert_eq!(outcome.trace.len(), 20);
//! ```

pub mod fleet_invariants;
pub mod harness;
pub mod invariants;
pub mod matrix;
pub mod plans;

pub use fleet_invariants::{
    batch_equivalence_check, batch_shape_coverage_check, check_fleet_outcome, fleet_replay_check,
    migration_transparency_check, obs_equivalence_check, wallclock_equivalence_check,
};
pub use harness::{replay_check, run_scenario, run_scenario_with, ScenarioOutcome, ScenarioSpec};
pub use invariants::{standard_invariants, FrameContext, Invariant, InvariantViolation};
pub use matrix::{run_matrix, scenario_specs, MatrixConfig, MatrixSummary, ScenarioResult};
pub use plans::NamedPlan;
