//! The motion platform controller.
//!
//! Combines washout filtering, frame-rate-synchronized interpolation, engine
//! vibration and actuator limiting into the single object the simulator's
//! motion-platform module (an LP on the cluster) drives every frame.

use serde::{Deserialize, Serialize};
use sim_math::Vec3;

use crate::actuator::{Actuator, ActuatorLimits};
use crate::geometry::{PlatformPose, StewartGeometry};
use crate::interpolate::PoseInterpolator;
use crate::kinematics::inverse_kinematics;
use crate::vibration::VibrationGenerator;
use crate::washout::WashoutFilter;

/// One motion cue produced by the dynamics module, one per visual frame.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MotionCue {
    /// Vehicle body acceleration in m/s^2 (body frame: x right, y up, z forward).
    pub acceleration: Vec3,
    /// Chassis pitch from terrain following, radians.
    pub pitch: f64,
    /// Chassis roll from terrain following, radians.
    pub roll: f64,
    /// Yaw rate, radians per second.
    pub yaw_rate: f64,
    /// Engine intensity in `[0, 1]` (drives the vibration level).
    pub engine_intensity: f64,
}

/// The full motion-platform controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MotionController {
    geometry: StewartGeometry,
    washout: WashoutFilter,
    interpolator: PoseInterpolator,
    vibration: VibrationGenerator,
    actuators: [Actuator; 6],
    engine_intensity: f64,
    cue_interval: f64,
}

impl MotionController {
    /// Creates a controller for the training platform, expecting motion cues at
    /// `visual_fps` frames per second.
    ///
    /// # Panics
    ///
    /// Panics if `visual_fps` is not positive.
    pub fn new(visual_fps: f64, seed: u64) -> MotionController {
        assert!(visual_fps > 0.0, "visual frame rate must be positive");
        let geometry = StewartGeometry::training_platform();
        let neutral = geometry.neutral_leg_lengths();
        let limits = ActuatorLimits {
            min_length: neutral[0] - 0.35,
            max_length: neutral[0] + 0.35,
            max_rate: 0.5,
        };
        MotionController {
            geometry,
            washout: WashoutFilter::default(),
            interpolator: PoseInterpolator::new(1.0 / visual_fps),
            vibration: VibrationGenerator::new(seed),
            actuators: [Actuator::new(limits, neutral[0]); 6],
            engine_intensity: 0.0,
            cue_interval: 1.0 / visual_fps,
        }
    }

    /// Re-synchronizes the interpolation with a new visual frame rate
    /// (paper §3.4: the interpolation frequency must follow the display).
    ///
    /// # Panics
    ///
    /// Panics if `visual_fps` is not positive.
    pub fn set_visual_fps(&mut self, visual_fps: f64) {
        assert!(visual_fps > 0.0, "visual frame rate must be positive");
        self.cue_interval = 1.0 / visual_fps;
        self.interpolator.set_cue_interval(self.cue_interval);
    }

    /// Feeds one motion cue (called once per visual frame by the dynamics LP).
    pub fn push_cue(&mut self, cue: MotionCue) {
        let pose = self.washout.update(
            cue.acceleration,
            cue.pitch,
            cue.roll,
            cue.yaw_rate,
            self.cue_interval,
        );
        self.engine_intensity = cue.engine_intensity.clamp(0.0, 1.0);
        self.interpolator.push_cue(pose);
    }

    /// Runs one servo update of `dt` seconds and returns the commanded pose
    /// (after interpolation and vibration) together with the six achieved
    /// actuator lengths.
    pub fn servo_step(&mut self, dt: f64) -> (PlatformPose, [f64; 6]) {
        let pose = self.interpolator.advance(dt);
        let pose = self.vibration.apply(pose, self.engine_intensity, dt);
        let targets = inverse_kinematics(&self.geometry, &pose);
        let mut achieved = [0.0; 6];
        for (i, actuator) in self.actuators.iter_mut().enumerate() {
            achieved[i] = actuator.drive_toward(targets[i], dt);
        }
        (pose, achieved)
    }

    /// Whether any actuator hit a stroke or rate limit on the last servo step.
    pub fn any_actuator_saturated(&self) -> bool {
        self.actuators.iter().any(|a| a.saturated)
    }

    /// The platform geometry in use.
    pub fn geometry(&self) -> &StewartGeometry {
        &self.geometry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_platform_stays_near_neutral_with_small_rumble() {
        let mut c = MotionController::new(16.0, 7);
        c.push_cue(MotionCue { engine_intensity: 0.2, ..Default::default() });
        let mut max_offset: f64 = 0.0;
        for _ in 0..200 {
            let (pose, legs) = c.servo_step(1.0 / 200.0);
            max_offset = max_offset.max(pose.translation.horizontal().length());
            for l in legs {
                assert!(l.is_finite());
            }
        }
        assert!(max_offset < 0.05);
    }

    #[test]
    fn braking_cue_pitches_the_platform() {
        let mut c = MotionController::new(16.0, 7);
        // Sustained deceleration (braking): acceleration opposite to forward (+z).
        for _ in 0..64 {
            c.push_cue(MotionCue {
                acceleration: Vec3::new(0.0, 0.0, -3.0),
                engine_intensity: 0.5,
                ..Default::default()
            });
            for _ in 0..12 {
                c.servo_step(1.0 / 192.0);
            }
        }
        let (pose, _) = c.servo_step(1.0 / 192.0);
        let (_, pitch, _) = pose.rotation.to_yaw_pitch_roll();
        assert!(pitch.abs() > 0.02, "no tilt coordination under braking: {pitch}");
    }

    #[test]
    fn actuators_respect_limits_under_violent_cues() {
        let mut c = MotionController::new(16.0, 3);
        for i in 0..128 {
            c.push_cue(MotionCue {
                acceleration: Vec3::new(
                    ((i % 7) as f64 - 3.0) * 20.0,
                    10.0,
                    ((i % 5) as f64 - 2.0) * 20.0,
                ),
                pitch: 0.5,
                roll: -0.5,
                yaw_rate: 2.0,
                engine_intensity: 1.0,
            });
            for _ in 0..12 {
                let (_, legs) = c.servo_step(1.0 / 192.0);
                for l in legs {
                    assert!(
                        l >= c.actuators[0].limits.min_length - 1e-9
                            && l <= c.actuators[0].limits.max_length + 1e-9
                    );
                }
            }
        }
        assert!(c.any_actuator_saturated(), "violent input should saturate something");
    }

    #[test]
    fn servo_motion_is_smooth_between_cues() {
        let mut c = MotionController::new(16.0, 11);
        c.push_cue(MotionCue {
            acceleration: Vec3::new(2.0, 0.0, 3.0),
            engine_intensity: 0.8,
            ..Default::default()
        });
        let (mut previous, _) = c.servo_step(1.0 / 192.0);
        for _ in 0..48 {
            let (pose, _) = c.servo_step(1.0 / 192.0);
            assert!(pose.distance(&previous) < 0.03, "pose jumped");
            previous = pose;
        }
    }

    #[test]
    fn changing_visual_fps_keeps_working() {
        let mut c = MotionController::new(16.0, 1);
        c.push_cue(MotionCue::default());
        c.set_visual_fps(30.0);
        c.push_cue(MotionCue { acceleration: Vec3::new(0.0, 0.0, 1.0), ..Default::default() });
        let (pose, _) = c.servo_step(1.0 / 192.0);
        assert!(pose.translation.is_finite());
    }

    #[test]
    #[should_panic]
    fn zero_fps_rejected() {
        let _ = MotionController::new(0.0, 1);
    }
}
