//! Stewart-platform motion base substrate (paper §3.4).
//!
//! The motion platform of the original trainer is a Stewart platform: "six
//! parallel manipulators connect the platform with the base [and] can be
//! expanded and contracted individually to control the gesture of the
//! platform". The physical actuators are replaced here by a kinematic model;
//! everything the motion platform *controller* module has to do — washout
//! filtering of the vehicle motion, interpolation synchronized with the visual
//! frame rate, engine-vibration injection, actuator limit checking — runs
//! against that model exactly as it would against the hardware.
//!
//! ```
//! use motion_platform::{PlatformPose, StewartGeometry, inverse_kinematics};
//! use sim_math::Vec3;
//!
//! let geometry = StewartGeometry::training_platform();
//! let pose = PlatformPose { translation: Vec3::new(0.0, 0.05, 0.0), ..Default::default() };
//! let legs = inverse_kinematics(&geometry, &pose);
//! assert_eq!(legs.len(), 6);
//! ```

pub mod actuator;
pub mod controller;
pub mod geometry;
pub mod interpolate;
pub mod kinematics;
pub mod vibration;
pub mod washout;

pub use actuator::{Actuator, ActuatorLimits};
pub use controller::{MotionController, MotionCue};
pub use geometry::{PlatformPose, StewartGeometry};
pub use interpolate::PoseInterpolator;
pub use kinematics::{forward_kinematics, inverse_kinematics};
pub use vibration::VibrationGenerator;
pub use washout::WashoutFilter;
