//! Inverse and forward kinematics of the Stewart platform.

use crate::geometry::{PlatformPose, StewartGeometry};
use sim_math::Vec3;

/// Inverse kinematics: the six leg lengths that realize `pose`.
///
/// This is the computation the motion platform controller performs every
/// update; for a Stewart platform it is closed-form.
pub fn inverse_kinematics(geometry: &StewartGeometry, pose: &PlatformPose) -> [f64; 6] {
    let mut lengths = [0.0; 6];
    for (i, slot) in lengths.iter_mut().enumerate() {
        *slot = geometry.leg_length(pose, i);
    }
    lengths
}

/// Forward kinematics: estimates the pose that produces the given leg lengths.
///
/// There is no closed form for the forward problem; this uses damped numerical
/// coordinate descent from the neutral pose, which is ample for the small
/// excursions of a training platform. Returns the estimated pose and the final
/// root-mean-square leg-length error in metres.
pub fn forward_kinematics(
    geometry: &StewartGeometry,
    target_lengths: &[f64; 6],
) -> (PlatformPose, f64) {
    let mut state = [0.0f64; 6]; // x, y, z, yaw, pitch, roll
    let mut step = 0.02;
    let mut error = rms_error(geometry, &state, target_lengths);
    for _ in 0..400 {
        let mut improved = false;
        for axis in 0..6 {
            for direction in [1.0, -1.0] {
                let mut candidate = state;
                candidate[axis] += direction * step;
                let candidate_error = rms_error(geometry, &candidate, target_lengths);
                if candidate_error < error {
                    state = candidate;
                    error = candidate_error;
                    improved = true;
                }
            }
        }
        if !improved {
            step *= 0.5;
            if step < 1e-6 {
                break;
            }
        }
    }
    (pose_from_state(&state), error)
}

fn pose_from_state(state: &[f64; 6]) -> PlatformPose {
    PlatformPose::from_euler(Vec3::new(state[0], state[1], state[2]), state[3], state[4], state[5])
}

fn rms_error(geometry: &StewartGeometry, state: &[f64; 6], target: &[f64; 6]) -> f64 {
    let pose = pose_from_state(state);
    let lengths = inverse_kinematics(geometry, &pose);
    let sum: f64 = lengths.iter().zip(target).map(|(a, b)| (a - b) * (a - b)).sum();
    (sum / 6.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::StewartGeometry;
    use proptest::prelude::*;

    #[test]
    fn inverse_then_forward_recovers_the_pose() {
        let g = StewartGeometry::training_platform();
        let pose = PlatformPose::from_euler(Vec3::new(0.04, 0.06, -0.03), 0.03, 0.05, -0.04);
        let lengths = inverse_kinematics(&g, &pose);
        let (recovered, error) = forward_kinematics(&g, &lengths);
        assert!(error < 2e-3, "rms error {error}");
        // The contract of forward kinematics is that the recovered pose
        // reproduces the commanded leg lengths; for small excursions the pose
        // itself is also close (the problem is mildly ill-conditioned, so the
        // pose tolerance is looser than the leg tolerance).
        let reproduced = inverse_kinematics(&g, &recovered);
        for (a, b) in reproduced.iter().zip(&lengths) {
            assert!((a - b).abs() < 5e-3, "leg mismatch: {a} vs {b}");
        }
        assert!(recovered.translation.distance(pose.translation) < 0.08);
        assert!(recovered.rotation.angle_to(&pose.rotation) < 0.1);
    }

    #[test]
    fn neutral_lengths_solve_to_neutral_pose() {
        let g = StewartGeometry::training_platform();
        let (pose, error) = forward_kinematics(&g, &g.neutral_leg_lengths());
        assert!(error < 1e-3);
        assert!(pose.translation.length() < 0.01);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_ik_is_smooth_in_the_pose(dx in -0.08..0.08f64, dy in -0.08..0.08f64,
                                         pitch in -0.1..0.1f64, roll in -0.1..0.1f64) {
            let g = StewartGeometry::training_platform();
            let pose = PlatformPose::from_euler(Vec3::new(dx, dy, 0.0), 0.0, pitch, roll);
            let nearby = PlatformPose::from_euler(Vec3::new(dx + 1e-4, dy, 0.0), 0.0, pitch, roll);
            let a = inverse_kinematics(&g, &pose);
            let b = inverse_kinematics(&g, &nearby);
            for i in 0..6 {
                prop_assert!((a[i] - b[i]).abs() < 1e-3, "leg {i} jumped");
                prop_assert!(a[i].is_finite() && a[i] > 0.0);
            }
        }
    }
}
