//! Actuator stroke and rate limits.

use serde::{Deserialize, Serialize};
use sim_math::interp::move_toward;

/// Stroke and rate limits of one hydraulic actuator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActuatorLimits {
    /// Minimum leg length in metres.
    pub min_length: f64,
    /// Maximum leg length in metres.
    pub max_length: f64,
    /// Maximum extension/retraction rate in metres per second.
    pub max_rate: f64,
}

impl Default for ActuatorLimits {
    fn default() -> Self {
        ActuatorLimits { min_length: 1.0, max_length: 1.9, max_rate: 0.45 }
    }
}

impl ActuatorLimits {
    /// Whether `length` is within the stroke.
    pub fn within_stroke(&self, length: f64) -> bool {
        length >= self.min_length && length <= self.max_length
    }
}

/// One actuator with its current length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Actuator {
    /// Stroke and rate limits.
    pub limits: ActuatorLimits,
    /// Current leg length in metres.
    pub length: f64,
    /// Whether the last command had to be clamped (stroke or rate limit hit).
    pub saturated: bool,
}

impl Actuator {
    /// Creates an actuator at the given initial length, clamped into the stroke.
    pub fn new(limits: ActuatorLimits, length: f64) -> Actuator {
        Actuator {
            limits,
            length: length.clamp(limits.min_length, limits.max_length),
            saturated: false,
        }
    }

    /// Drives the actuator toward `target` for `dt` seconds, respecting the
    /// rate and stroke limits. Returns the achieved length.
    pub fn drive_toward(&mut self, target: f64, dt: f64) -> f64 {
        let clamped_target = target.clamp(self.limits.min_length, self.limits.max_length);
        let reachable = move_toward(self.length, clamped_target, self.limits.max_rate * dt);
        self.saturated =
            (clamped_target - target).abs() > 1e-9 || (reachable - clamped_target).abs() > 1e-9;
        self.length = reachable;
        self.length
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_limit_caps_travel_per_step() {
        let mut a = Actuator::new(ActuatorLimits::default(), 1.4);
        let achieved = a.drive_toward(1.9, 0.1);
        assert!((achieved - 1.445).abs() < 1e-12);
        assert!(a.saturated);
    }

    #[test]
    fn stroke_limit_is_respected() {
        let mut a = Actuator::new(ActuatorLimits::default(), 1.85);
        for _ in 0..100 {
            a.drive_toward(5.0, 0.1);
        }
        assert!((a.length - a.limits.max_length).abs() < 1e-12);
        assert!(a.saturated);
    }

    #[test]
    fn reachable_target_clears_saturation() {
        let mut a = Actuator::new(ActuatorLimits::default(), 1.4);
        a.drive_toward(1.41, 0.1);
        assert!(!a.saturated);
        assert!((a.length - 1.41).abs() < 1e-12);
    }

    #[test]
    fn construction_clamps_into_stroke() {
        let a = Actuator::new(ActuatorLimits::default(), 0.2);
        assert_eq!(a.length, a.limits.min_length);
        assert!(a.limits.within_stroke(a.length));
    }
}
