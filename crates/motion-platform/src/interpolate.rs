//! Pose interpolation synchronized with the visual frame rate.
//!
//! "The motion platform controller must smoothly transform the posture of the
//! platform between the consecutive statuses. In addition, the frequency of
//! this interpolation should be synchronized with the visual display in order
//! not to disorder the sensorium of the user" (paper §3.4). Motion cues arrive
//! at the visual frame rate (16–30 Hz) while the platform servo loop runs much
//! faster; this interpolator fills the gap.

use serde::{Deserialize, Serialize};

use crate::geometry::PlatformPose;

/// Interpolates between the last two received motion cues.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoseInterpolator {
    previous: PlatformPose,
    target: PlatformPose,
    /// Seconds between cues (one visual frame period).
    cue_interval: f64,
    /// Seconds elapsed since the last cue.
    elapsed: f64,
}

impl PoseInterpolator {
    /// Creates an interpolator expecting cues every `cue_interval` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `cue_interval` is not positive.
    pub fn new(cue_interval: f64) -> PoseInterpolator {
        assert!(cue_interval > 0.0, "cue interval must be positive");
        PoseInterpolator {
            previous: PlatformPose::neutral(),
            target: PlatformPose::neutral(),
            cue_interval,
            elapsed: 0.0,
        }
    }

    /// Updates the expected cue interval (the visual frame rate changed).
    ///
    /// # Panics
    ///
    /// Panics if `cue_interval` is not positive.
    pub fn set_cue_interval(&mut self, cue_interval: f64) {
        assert!(cue_interval > 0.0, "cue interval must be positive");
        self.cue_interval = cue_interval;
    }

    /// Feeds a new motion cue (called once per visual frame).
    pub fn push_cue(&mut self, pose: PlatformPose) {
        self.previous = self.sample_at(self.elapsed);
        self.target = pose;
        self.elapsed = 0.0;
    }

    /// Advances the servo clock by `dt` seconds and returns the interpolated pose.
    pub fn advance(&mut self, dt: f64) -> PlatformPose {
        self.elapsed += dt;
        self.sample_at(self.elapsed)
    }

    fn sample_at(&self, elapsed: f64) -> PlatformPose {
        let t = (elapsed / self.cue_interval).clamp(0.0, 1.0);
        self.previous.interpolate(&self.target, t)
    }

    /// The most recently received cue.
    pub fn target(&self) -> PlatformPose {
        self.target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_math::Vec3;

    fn cue(x: f64) -> PlatformPose {
        PlatformPose::from_euler(Vec3::new(x, 0.0, 0.0), 0.0, 0.0, 0.0)
    }

    #[test]
    fn reaches_the_cue_by_the_next_frame() {
        let mut interp = PoseInterpolator::new(1.0 / 16.0);
        interp.push_cue(cue(0.1));
        let mut pose = PlatformPose::neutral();
        for _ in 0..10 {
            pose = interp.advance(1.0 / 160.0);
        }
        assert!((pose.translation.x - 0.1).abs() < 1e-9);
    }

    #[test]
    fn motion_is_smooth_between_cues() {
        let mut interp = PoseInterpolator::new(1.0 / 16.0);
        interp.push_cue(cue(0.12));
        let mut previous = PlatformPose::neutral();
        let mut max_step = 0.0f64;
        for _ in 0..20 {
            let pose = interp.advance(1.0 / 320.0);
            max_step = max_step.max(pose.distance(&previous));
            previous = pose;
        }
        // At 320 Hz servo rate each step may cover at most 1/20 of the cue.
        assert!(max_step < 0.12 / 10.0, "interpolation jumped by {max_step}");
    }

    #[test]
    fn late_cue_does_not_cause_a_jump_backwards() {
        let mut interp = PoseInterpolator::new(1.0 / 16.0);
        interp.push_cue(cue(0.1));
        // Sample beyond one frame (the visual channel stalled).
        let held = interp.advance(0.2);
        assert!((held.translation.x - 0.1).abs() < 1e-9, "holds the last target");
        // New cue arrives; motion continues from the held pose.
        interp.push_cue(cue(0.05));
        let next = interp.advance(1.0 / 320.0);
        assert!(next.translation.x <= 0.1 + 1e-9 && next.translation.x >= 0.05 - 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_interval_rejected() {
        let _ = PoseInterpolator::new(0.0);
    }
}
