//! Engine vibration injection.
//!
//! "Since the mobile crane is a heavy industrial instrument, it will create
//! noisy sounds and vibration while its engine is ignited. The motion platform
//! controller constantly generates a random up-and-down vibration to
//! realistically simulate this situation" (paper §3.4).

use serde::{Deserialize, Serialize};
use sim_math::{ValueNoise, Vec3};

use crate::geometry::PlatformPose;

/// Deterministic engine-rumble generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VibrationGenerator {
    noise: ValueNoise,
    /// Peak vertical displacement at full intensity, in metres.
    pub amplitude: f64,
    /// Base rumble frequency in hertz.
    pub frequency: f64,
    time: f64,
}

impl VibrationGenerator {
    /// Creates a generator with a deterministic seed.
    pub fn new(seed: u64) -> VibrationGenerator {
        VibrationGenerator {
            noise: ValueNoise::new(seed),
            amplitude: 0.006,
            frequency: 13.0,
            time: 0.0,
        }
    }

    /// Advances time by `dt` seconds and returns the vibration offset for an
    /// engine running at `intensity` in `[0, 1]` (idle to full throttle).
    pub fn sample(&mut self, intensity: f64, dt: f64) -> Vec3 {
        self.time += dt;
        let intensity = intensity.clamp(0.0, 1.0);
        let phase = self.time * self.frequency;
        let vertical = self.noise.fractal(phase, 3) * self.amplitude * (0.4 + 0.6 * intensity);
        let lateral = self.noise.fractal(phase + 1000.0, 2) * self.amplitude * 0.3 * intensity;
        Vec3::new(lateral, vertical, 0.0)
    }

    /// Adds the vibration to a commanded pose.
    pub fn apply(&mut self, pose: PlatformPose, intensity: f64, dt: f64) -> PlatformPose {
        let offset = self.sample(intensity, dt);
        PlatformPose { translation: pose.translation + offset, rotation: pose.rotation }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vibration_is_deterministic_per_seed() {
        let mut a = VibrationGenerator::new(5);
        let mut b = VibrationGenerator::new(5);
        for _ in 0..100 {
            assert_eq!(a.sample(0.7, 0.01), b.sample(0.7, 0.01));
        }
        let mut c = VibrationGenerator::new(6);
        let differs = (0..100).any(|_| a.sample(0.7, 0.01) != c.sample(0.7, 0.01));
        assert!(differs);
    }

    #[test]
    fn vibration_is_bounded_and_nonzero_when_running() {
        let mut v = VibrationGenerator::new(1);
        let mut peak: f64 = 0.0;
        for _ in 0..1000 {
            let s = v.sample(1.0, 1.0 / 60.0);
            peak = peak.max(s.length());
            assert!(s.length() <= v.amplitude * 2.0);
        }
        assert!(peak > v.amplitude * 0.2, "engine running but platform still");
    }

    #[test]
    fn idle_engine_vibrates_less_than_full_throttle() {
        let measure = |intensity: f64| {
            let mut v = VibrationGenerator::new(9);
            (0..2000).map(|_| v.sample(intensity, 1.0 / 60.0).length()).fold(0.0f64, f64::max)
        };
        assert!(measure(0.0) < measure(1.0));
    }

    #[test]
    fn apply_offsets_the_pose() {
        let mut v = VibrationGenerator::new(2);
        let pose = PlatformPose::neutral();
        let vibrated = v.apply(pose, 1.0, 0.3);
        assert!(vibrated.translation.length() > 0.0);
        assert_eq!(vibrated.rotation, pose.rotation);
    }
}
