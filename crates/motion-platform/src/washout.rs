//! Classical washout filtering.
//!
//! A motion platform can only travel centimetres while the vehicle travels
//! metres, so the controller "washes out" sustained accelerations: the onset of
//! an acceleration is reproduced by translating the platform (high-pass path),
//! sustained acceleration is converted into a gravity-aligned tilt the rider
//! cannot distinguish from it (tilt-coordination, low-pass path), and the
//! platform always creeps back to neutral.

use serde::{Deserialize, Serialize};
use sim_math::{HighPass, LowPass, Vec3};

use crate::geometry::PlatformPose;

/// The classical washout filter producing platform poses from vehicle motion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WashoutFilter {
    /// Scale from vehicle acceleration to platform displacement (m per m/s^2).
    pub translation_gain: f64,
    /// Scale from sustained acceleration to tilt (rad per m/s^2).
    pub tilt_gain: f64,
    /// Maximum platform translation magnitude in metres.
    pub max_translation: f64,
    /// Maximum tilt in radians.
    pub max_tilt: f64,
    hp_x: HighPass,
    hp_y: HighPass,
    hp_z: HighPass,
    lp_x: LowPass,
    lp_z: LowPass,
    hp_yaw: HighPass,
}

impl Default for WashoutFilter {
    fn default() -> Self {
        WashoutFilter {
            translation_gain: 0.012,
            tilt_gain: 0.05,
            max_translation: 0.18,
            max_tilt: 18f64.to_radians(),
            hp_x: HighPass::new(0.4),
            hp_y: HighPass::new(0.4),
            hp_z: HighPass::new(0.4),
            lp_x: LowPass::new(0.25),
            lp_z: LowPass::new(0.25),
            hp_yaw: HighPass::new(0.5),
        }
    }
}

impl WashoutFilter {
    /// Feeds one sample of vehicle body acceleration (m/s^2, body frame),
    /// body pitch/roll from terrain following, and yaw rate (rad/s), and
    /// returns the commanded platform pose.
    pub fn update(
        &mut self,
        acceleration: Vec3,
        vehicle_pitch: f64,
        vehicle_roll: f64,
        yaw_rate: f64,
        dt: f64,
    ) -> PlatformPose {
        // Onset cues: high-passed acceleration becomes a transient displacement.
        let tx = self.hp_x.update(acceleration.x, dt) * self.translation_gain;
        let ty = self.hp_y.update(acceleration.y, dt) * self.translation_gain;
        let tz = self.hp_z.update(acceleration.z, dt) * self.translation_gain;
        let mut translation = Vec3::new(tx, ty, tz);
        let len = translation.length();
        if len > self.max_translation {
            translation = translation * (self.max_translation / len);
        }

        // Sustained cues: low-passed acceleration becomes tilt coordination,
        // added to the terrain-following attitude of the vehicle itself.
        let sustained_x = self.lp_x.update(acceleration.x, dt);
        let sustained_z = self.lp_z.update(acceleration.z, dt);
        let pitch =
            (vehicle_pitch + sustained_z * self.tilt_gain).clamp(-self.max_tilt, self.max_tilt);
        let roll =
            (vehicle_roll - sustained_x * self.tilt_gain).clamp(-self.max_tilt, self.max_tilt);
        let yaw = self.hp_yaw.update(yaw_rate, dt) * 0.1;

        PlatformPose::from_euler(translation, yaw, pitch, roll)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: f64 = 1.0 / 60.0;

    #[test]
    fn sustained_acceleration_washes_out_of_the_translation() {
        let mut w = WashoutFilter::default();
        let mut last = PlatformPose::neutral();
        // One minute of constant forward acceleration.
        for _ in 0..3600 {
            last = w.update(Vec3::new(0.0, 0.0, 2.0), 0.0, 0.0, 0.0, DT);
        }
        assert!(last.translation.length() < 0.01, "sustained cue did not wash out");
        // ... but it remains represented as a tilt.
        let (_, pitch, _) = last.rotation.to_yaw_pitch_roll();
        assert!(pitch.abs() > 0.02, "tilt coordination missing");
    }

    #[test]
    fn onset_produces_a_transient_translation() {
        let mut w = WashoutFilter::default();
        w.update(Vec3::ZERO, 0.0, 0.0, 0.0, DT);
        let onset = w.update(Vec3::new(0.0, 0.0, 3.0), 0.0, 0.0, 0.0, DT);
        assert!(onset.translation.z.abs() > 1e-4, "no onset cue");
    }

    #[test]
    fn translation_never_exceeds_the_excursion_limit() {
        let mut w = WashoutFilter::default();
        for i in 0..2000 {
            let a = Vec3::new((i as f64 * 0.1).sin() * 50.0, 0.0, (i as f64 * 0.07).cos() * 50.0);
            let pose = w.update(a, 0.0, 0.0, 0.0, DT);
            assert!(pose.translation.length() <= w.max_translation + 1e-9);
        }
    }

    #[test]
    fn terrain_attitude_passes_through_and_is_clamped() {
        let mut w = WashoutFilter::default();
        let pose = w.update(Vec3::ZERO, 0.1, -0.08, 0.0, DT);
        let (_, pitch, roll) = pose.rotation.to_yaw_pitch_roll();
        assert!((pitch - 0.1).abs() < 0.02);
        assert!((roll + 0.08).abs() < 0.02);
        let extreme = w.update(Vec3::ZERO, 1.0, -1.0, 0.0, DT);
        let (_, pitch, roll) = extreme.rotation.to_yaw_pitch_roll();
        assert!(pitch <= w.max_tilt + 1e-9);
        assert!(roll >= -w.max_tilt - 1e-9);
    }
}
