//! Stewart-platform geometry: where the six joints sit on the base and the platform.

use serde::{Deserialize, Serialize};
use sim_math::{Quat, Vec3};

/// The pose of the moving platform relative to its neutral position.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PlatformPose {
    /// Translation of the platform centre (metres; surge, heave, sway).
    pub translation: Vec3,
    /// Orientation of the platform (roll, pitch, yaw).
    pub rotation: Quat,
}

impl PlatformPose {
    /// The neutral pose.
    pub fn neutral() -> PlatformPose {
        PlatformPose::default()
    }

    /// A pose from Euler angles (yaw, pitch, roll in radians) and a translation.
    pub fn from_euler(translation: Vec3, yaw: f64, pitch: f64, roll: f64) -> PlatformPose {
        PlatformPose { translation, rotation: Quat::from_yaw_pitch_roll(yaw, pitch, roll) }
    }

    /// Linear interpolation (slerp for the rotation) toward `other`.
    pub fn interpolate(&self, other: &PlatformPose, t: f64) -> PlatformPose {
        PlatformPose {
            translation: self.translation.lerp(other.translation, t),
            rotation: self.rotation.slerp(&other.rotation, t),
        }
    }

    /// A scalar measure of how far this pose is from another (metres plus
    /// radians weighted by one metre per radian) — used for smoothness checks.
    pub fn distance(&self, other: &PlatformPose) -> f64 {
        self.translation.distance(other.translation) + self.rotation.angle_to(&other.rotation)
    }
}

/// Joint layout of a six-legged Stewart platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StewartGeometry {
    /// Base joint positions in base coordinates (Y up, origin at base centre).
    pub base_joints: [Vec3; 6],
    /// Platform joint positions in platform coordinates (origin at platform centre).
    pub platform_joints: [Vec3; 6],
    /// Height of the platform centre above the base centre in the neutral pose.
    pub neutral_height: f64,
}

impl StewartGeometry {
    /// Builds the classic 6-6 layout from radii and pairing angles.
    ///
    /// # Panics
    ///
    /// Panics if a radius or the neutral height is not positive.
    pub fn symmetric(
        base_radius: f64,
        platform_radius: f64,
        neutral_height: f64,
        half_angle: f64,
    ) -> StewartGeometry {
        assert!(base_radius > 0.0 && platform_radius > 0.0 && neutral_height > 0.0);
        let mut base_joints = [Vec3::ZERO; 6];
        let mut platform_joints = [Vec3::ZERO; 6];
        for pair in 0..3 {
            let centre_angle = pair as f64 * 120f64.to_radians();
            for (k, sign) in [(0usize, -1.0f64), (1usize, 1.0f64)] {
                let index = pair * 2 + k;
                let base_angle = centre_angle + sign * half_angle;
                // Platform joints are rotated 60 degrees so legs cross.
                let platform_angle = centre_angle + 60f64.to_radians() + sign * half_angle;
                base_joints[index] =
                    Vec3::new(base_radius * base_angle.cos(), 0.0, base_radius * base_angle.sin());
                platform_joints[index] = Vec3::new(
                    platform_radius * platform_angle.cos(),
                    0.0,
                    platform_radius * platform_angle.sin(),
                );
            }
        }
        StewartGeometry { base_joints, platform_joints, neutral_height }
    }

    /// The platform installed under the crane mockup: a medium-excursion
    /// training base of roughly two metres diameter.
    pub fn training_platform() -> StewartGeometry {
        StewartGeometry::symmetric(1.1, 0.8, 1.05, 12f64.to_radians())
    }

    /// The world-space position of platform joint `i` for a given pose.
    pub fn platform_joint_world(&self, pose: &PlatformPose, i: usize) -> Vec3 {
        pose.rotation.rotate(self.platform_joints[i])
            + pose.translation
            + Vec3::new(0.0, self.neutral_height, 0.0)
    }

    /// Leg length of actuator `i` for the given pose.
    pub fn leg_length(&self, pose: &PlatformPose, i: usize) -> f64 {
        self.platform_joint_world(pose, i).distance(self.base_joints[i])
    }

    /// Leg lengths in the neutral pose.
    pub fn neutral_leg_lengths(&self) -> [f64; 6] {
        let neutral = PlatformPose::neutral();
        let mut out = [0.0; 6];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.leg_length(&neutral, i);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_layout_has_equal_neutral_legs() {
        let g = StewartGeometry::training_platform();
        let legs = g.neutral_leg_lengths();
        for pair in legs.windows(2) {
            assert!((pair[0] - pair[1]).abs() < 1e-9, "legs unequal: {legs:?}");
        }
        assert!(legs[0] > g.neutral_height, "legs must be longer than the height alone");
    }

    #[test]
    fn heave_lengthens_every_leg() {
        let g = StewartGeometry::training_platform();
        let up = PlatformPose { translation: Vec3::new(0.0, 0.15, 0.0), ..Default::default() };
        let neutral = g.neutral_leg_lengths();
        for i in 0..6 {
            assert!(g.leg_length(&up, i) > neutral[i]);
        }
    }

    #[test]
    fn roll_lengthens_one_side_and_shortens_the_other() {
        let g = StewartGeometry::training_platform();
        let rolled = PlatformPose::from_euler(Vec3::ZERO, 0.0, 0.0, 8f64.to_radians());
        let neutral = g.neutral_leg_lengths();
        let deltas: Vec<f64> = (0..6).map(|i| g.leg_length(&rolled, i) - neutral[i]).collect();
        assert!(deltas.iter().any(|d| *d > 1e-4));
        assert!(deltas.iter().any(|d| *d < -1e-4));
    }

    #[test]
    fn pose_interpolation_endpoints_and_distance() {
        let a = PlatformPose::neutral();
        let b = PlatformPose::from_euler(Vec3::new(0.1, 0.0, 0.0), 0.0, 0.2, 0.0);
        assert!(a.interpolate(&b, 0.0).distance(&a) < 1e-12);
        assert!(a.interpolate(&b, 1.0).distance(&b) < 1e-9);
        assert!(a.distance(&b) > 0.2);
    }

    #[test]
    #[should_panic]
    fn non_positive_radius_rejected() {
        let _ = StewartGeometry::symmetric(0.0, 1.0, 1.0, 0.2);
    }
}
