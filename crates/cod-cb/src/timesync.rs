//! Conservative time management in the style of Chandy & Misra.
//!
//! The paper references the asynchronous distributed-simulation scheme of
//! Chandy & Misra (CACM 1981) as the basis for running the COD without a
//! central coordinator. This module provides the two halves of that scheme:
//!
//! * [`LookaheadClock`] — used by a *producing* LP: given its own simulation
//!   time and a declared lookahead, it yields the lower bound it may promise
//!   downstream (carried by `NullMessage` wire messages when no real update is
//!   available).
//! * [`TimeManager`] — used by a *consuming* LP: tracks the per-channel time
//!   bounds learned from data and null messages and computes the lower bound on
//!   incoming timestamps (LBTS), i.e. how far the consumer may safely advance
//!   without risking a causality violation.

use crate::channel::ChannelId;
use cod_net::Micros;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Producer-side clock with lookahead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LookaheadClock {
    local_time: Micros,
    lookahead: Micros,
}

impl LookaheadClock {
    /// Creates a clock at time zero with the given lookahead.
    ///
    /// # Panics
    ///
    /// Panics if `lookahead` is zero: a zero lookahead deadlocks the
    /// Chandy–Misra scheme.
    pub fn new(lookahead: Micros) -> LookaheadClock {
        assert!(lookahead > Micros::ZERO, "lookahead must be positive");
        LookaheadClock { local_time: Micros::ZERO, lookahead }
    }

    /// Advances the producer's local simulation time.
    ///
    /// # Panics
    ///
    /// Panics if time would move backwards.
    pub fn advance_to(&mut self, t: Micros) {
        assert!(t >= self.local_time, "local time cannot run backwards");
        self.local_time = t;
    }

    /// The producer's current local time.
    pub fn local_time(&self) -> Micros {
        self.local_time
    }

    /// The declared lookahead.
    pub fn lookahead(&self) -> Micros {
        self.lookahead
    }

    /// The guarantee the producer may promise downstream: no future message
    /// will carry a timestamp earlier than this.
    pub fn guarantee(&self) -> Micros {
        self.local_time + self.lookahead
    }
}

/// Consumer-side tracking of channel time bounds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeManager {
    bounds: BTreeMap<ChannelId, Micros>,
    granted: Micros,
}

impl TimeManager {
    /// Creates a manager with no input channels.
    pub fn new() -> TimeManager {
        TimeManager::default()
    }

    /// Registers an input channel. Until a bound is learned the channel
    /// contributes a bound of zero, blocking advancement.
    pub fn add_channel(&mut self, channel: ChannelId) {
        self.bounds.entry(channel).or_insert(Micros::ZERO);
    }

    /// Removes an input channel (e.g. after a publisher withdrew).
    pub fn remove_channel(&mut self, channel: ChannelId) {
        self.bounds.remove(&channel);
    }

    /// Records a time bound learned from a data or null message on `channel`.
    /// Bounds never regress.
    pub fn observe(&mut self, channel: ChannelId, bound: Micros) {
        let entry = self.bounds.entry(channel).or_insert(Micros::ZERO);
        if bound > *entry {
            *entry = bound;
        }
    }

    /// Number of tracked input channels.
    pub fn channel_count(&self) -> usize {
        self.bounds.len()
    }

    /// Lower Bound on incoming Time Stamps: the earliest timestamp any future
    /// message could still carry. With no input channels the consumer is
    /// unconstrained and may advance freely.
    pub fn lbts(&self) -> Option<Micros> {
        self.bounds.values().copied().min()
    }

    /// Whether the consumer may safely advance its simulation time to `t`.
    pub fn can_advance_to(&self, t: Micros) -> bool {
        match self.lbts() {
            None => true,
            Some(lbts) => t <= lbts,
        }
    }

    /// Requests advancement to `t`; returns the time actually granted (the
    /// minimum of `t` and the LBTS). The grant is monotone.
    pub fn request_advance(&mut self, t: Micros) -> Micros {
        let granted = match self.lbts() {
            None => t,
            Some(lbts) => {
                if t <= lbts {
                    t
                } else {
                    lbts
                }
            }
        };
        if granted > self.granted {
            self.granted = granted;
        }
        self.granted
    }

    /// The largest time granted so far.
    pub fn granted(&self) -> Micros {
        self.granted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lookahead_guarantee() {
        let mut clock = LookaheadClock::new(Micros::from_millis(10));
        assert_eq!(clock.guarantee(), Micros::from_millis(10));
        clock.advance_to(Micros::from_millis(100));
        assert_eq!(clock.guarantee(), Micros::from_millis(110));
        assert_eq!(clock.local_time(), Micros::from_millis(100));
        assert_eq!(clock.lookahead(), Micros::from_millis(10));
    }

    #[test]
    #[should_panic]
    fn zero_lookahead_rejected() {
        let _ = LookaheadClock::new(Micros::ZERO);
    }

    #[test]
    #[should_panic]
    fn clock_cannot_go_backwards() {
        let mut clock = LookaheadClock::new(Micros(1));
        clock.advance_to(Micros(10));
        clock.advance_to(Micros(5));
    }

    #[test]
    fn lbts_is_minimum_over_channels() {
        let mut tm = TimeManager::new();
        assert_eq!(tm.lbts(), None);
        assert!(tm.can_advance_to(Micros::from_secs(100)));

        tm.add_channel(ChannelId(1));
        tm.add_channel(ChannelId(2));
        assert_eq!(tm.lbts(), Some(Micros::ZERO));
        assert!(!tm.can_advance_to(Micros(1)));

        tm.observe(ChannelId(1), Micros(500));
        tm.observe(ChannelId(2), Micros(300));
        assert_eq!(tm.lbts(), Some(Micros(300)));
        assert!(tm.can_advance_to(Micros(300)));
        assert!(!tm.can_advance_to(Micros(301)));

        // Bounds never regress.
        tm.observe(ChannelId(2), Micros(100));
        assert_eq!(tm.lbts(), Some(Micros(300)));

        tm.remove_channel(ChannelId(2));
        assert_eq!(tm.lbts(), Some(Micros(500)));
        assert_eq!(tm.channel_count(), 1);
    }

    #[test]
    fn request_advance_is_clamped_and_monotone() {
        let mut tm = TimeManager::new();
        tm.add_channel(ChannelId(1));
        tm.observe(ChannelId(1), Micros(200));
        assert_eq!(tm.request_advance(Micros(150)), Micros(150));
        assert_eq!(tm.request_advance(Micros(1_000)), Micros(200));
        // Even if a later request asks for less, the grant does not regress.
        assert_eq!(tm.request_advance(Micros(50)), Micros(200));
        assert_eq!(tm.granted(), Micros(200));
    }

    #[test]
    fn consumer_clock_offset_converges_to_within_one_frame_of_the_producer() {
        // A producer stepping at the 16 fps executive rate with one frame of
        // lookahead; the consumer requests advancement to the producer's time
        // each round. After the first round the consumer's offset (producer
        // local time minus granted time) converges to zero and stays there.
        let frame = Micros(62_500);
        let mut producer = LookaheadClock::new(frame);
        let mut tm = TimeManager::new();
        let channel = ChannelId(1);
        tm.add_channel(channel);

        let mut offsets = Vec::new();
        for step in 1..=100u64 {
            let t = Micros(step * frame.0);
            producer.advance_to(t);
            tm.observe(channel, producer.guarantee());
            let granted = tm.request_advance(t);
            offsets.push(producer.local_time().0 as i64 - granted.0 as i64);
        }
        // Converged: from the first observation on, the consumer is granted
        // exactly the producer's time (offset zero), never beyond it.
        assert!(offsets.iter().all(|o| *o == 0), "offsets never converged: {offsets:?}");
        assert_eq!(tm.granted(), producer.local_time());
    }

    #[test]
    fn consumer_lag_is_bounded_by_the_slowest_producer() {
        // Two producers, one a full frame behind the other: the consumer's
        // grant tracks the laggard's guarantee, never the fast producer's.
        let frame = Micros(62_500);
        let mut fast = LookaheadClock::new(frame);
        let mut slow = LookaheadClock::new(frame);
        let mut tm = TimeManager::new();
        tm.add_channel(ChannelId(1));
        tm.add_channel(ChannelId(2));

        for step in 1..=50u64 {
            fast.advance_to(Micros(step * frame.0));
            if step > 1 {
                slow.advance_to(Micros((step - 1) * frame.0));
            }
            tm.observe(ChannelId(1), fast.guarantee());
            tm.observe(ChannelId(2), slow.guarantee());
            let granted = tm.request_advance(fast.local_time());
            let lag = fast.local_time().saturating_sub(granted);
            assert!(lag <= frame, "consumer lag {lag} exceeds one frame at step {step}");
            assert_eq!(granted, slow.guarantee(), "grant must track the slowest producer");
        }
    }

    proptest! {
        #[test]
        fn prop_granted_time_is_monotone_under_any_request_sequence(
                requests in proptest::collection::vec(0u64..1_000_000, 2..32)) {
            let mut tm = TimeManager::new();
            tm.add_channel(ChannelId(1));
            tm.observe(ChannelId(1), Micros(500_000));
            let mut last = Micros::ZERO;
            for request in requests {
                let granted = tm.request_advance(Micros(request));
                prop_assert!(granted >= last, "grant regressed: {granted} < {last}");
                last = granted;
            }
        }

        #[test]
        fn prop_granted_time_never_exceeds_lbts(bounds in proptest::collection::vec(0u64..1_000_000, 1..8),
                                                request in 0u64..2_000_000) {
            let mut tm = TimeManager::new();
            for (i, b) in bounds.iter().enumerate() {
                tm.add_channel(ChannelId(i as u64));
                tm.observe(ChannelId(i as u64), Micros(*b));
            }
            let granted = tm.request_advance(Micros(request));
            prop_assert!(granted <= tm.lbts().unwrap().max(Micros(request)));
            prop_assert!(granted.0 <= request.max(*bounds.iter().min().unwrap()));
            // Safety: the grant never exceeds the minimum channel bound unless
            // the request itself was below it.
            prop_assert!(granted.0 <= (*bounds.iter().min().unwrap()).max(request.min(*bounds.iter().min().unwrap())) || granted.0 <= request);
        }
    }
}
