//! Per-CB counters used by the evaluation harness.

use cod_net::Micros;
use serde::{Deserialize, Serialize};

/// Counters accumulated by one Communication Backbone instance.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CbStats {
    /// SUBSCRIPTION broadcasts sent.
    pub subscription_broadcasts: u64,
    /// ACKNOWLEDGE messages sent (publisher side).
    pub acknowledges_sent: u64,
    /// Virtual channels established (both roles).
    pub channels_established: u64,
    /// Updates pushed by local LPs.
    pub updates_published: u64,
    /// Updates routed to a co-resident LP without touching the network.
    pub updates_routed_locally: u64,
    /// Updates sent over the network on virtual channels.
    pub updates_sent_remote: u64,
    /// Reflections delivered to local subscriber LPs.
    pub reflections_delivered: u64,
    /// Interactions sent by local LPs.
    pub interactions_sent: u64,
    /// Interactions delivered to local LPs.
    pub interactions_delivered: u64,
    /// Wire messages received and decoded.
    pub wire_messages_received: u64,
    /// Wire messages that failed to decode.
    pub decode_errors: u64,
    /// Channel-setup latencies observed by local subscriptions (first channel).
    pub setup_latencies: Vec<Micros>,
}

impl CbStats {
    /// Mean channel-setup latency, if any setup completed.
    pub fn mean_setup_latency(&self) -> Option<Micros> {
        if self.setup_latencies.is_empty() {
            return None;
        }
        let sum: u64 = self.setup_latencies.iter().map(|m| m.0).sum();
        Some(Micros(sum / self.setup_latencies.len() as u64))
    }

    /// Fraction of published updates that stayed on the local machine.
    pub fn local_routing_ratio(&self) -> f64 {
        let total = self.updates_routed_locally + self.updates_sent_remote;
        if total == 0 {
            0.0
        } else {
            self.updates_routed_locally as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_setup_latency() {
        let mut s = CbStats::default();
        assert!(s.mean_setup_latency().is_none());
        s.setup_latencies.push(Micros(100));
        s.setup_latencies.push(Micros(300));
        assert_eq!(s.mean_setup_latency(), Some(Micros(200)));
    }

    #[test]
    fn local_routing_ratio() {
        let mut s = CbStats::default();
        assert_eq!(s.local_routing_ratio(), 0.0);
        s.updates_routed_locally = 3;
        s.updates_sent_remote = 1;
        assert!((s.local_routing_ratio() - 0.75).abs() < 1e-12);
    }
}
