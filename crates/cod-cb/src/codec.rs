//! Compact binary codec for Communication Backbone wire messages.
//!
//! The original CB spoke raw datagrams on the LAN; this module provides the
//! equivalent hand-rolled binary encoding. Only the approved `bytes` crate is
//! used — no serialization framework — so the exact wire cost of every message
//! is visible and is charged faithfully by the simulated LAN's bandwidth model.

use bytes::{Buf, BufMut, BytesMut};

use crate::error::CbError;
use crate::fom::{AttributeId, AttributeValues, Value};
use cod_net::{Addr, Micros, NodeId, Port};

/// A bounds-checked reader over a received payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    /// Remaining bytes.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    fn need(&self, n: usize) -> Result<(), CbError> {
        if self.buf.remaining() < n {
            Err(CbError::Codec(format!(
                "truncated message: needed {n} more bytes, {} available",
                self.buf.remaining()
            )))
        } else {
            Ok(())
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CbError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CbError> {
        self.need(2)?;
        Ok(self.buf.get_u16())
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CbError> {
        self.need(4)?;
        Ok(self.buf.get_u32())
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CbError> {
        self.need(8)?;
        Ok(self.buf.get_u64())
    }

    /// Reads a big-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, CbError> {
        self.need(8)?;
        Ok(self.buf.get_f64())
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, CbError> {
        let len = self.u32()? as usize;
        self.need(len)?;
        let mut v = vec![0u8; len];
        self.buf.copy_to_slice(&mut v);
        Ok(v)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, CbError> {
        let raw = self.bytes()?;
        String::from_utf8(raw).map_err(|e| CbError::Codec(format!("invalid utf-8: {e}")))
    }

    /// Reads a cluster address.
    pub fn addr(&mut self) -> Result<Addr, CbError> {
        let node = self.u16()?;
        let port = self.u16()?;
        Ok(Addr::new(NodeId(node), Port(port)))
    }

    /// Reads a simulated timestamp.
    pub fn micros(&mut self) -> Result<Micros, CbError> {
        Ok(Micros(self.u64()?))
    }

    /// Reads one typed [`Value`].
    pub fn value(&mut self) -> Result<Value, CbError> {
        match self.u8()? {
            0 => Ok(Value::Bool(self.u8()? != 0)),
            1 => Ok(Value::U32(self.u32()?)),
            2 => Ok(Value::F64(self.f64()?)),
            3 => Ok(Value::Vec3([self.f64()?, self.f64()?, self.f64()?])),
            4 => Ok(Value::Text(self.string()?)),
            5 => Ok(Value::Bytes(self.bytes()?)),
            tag => Err(CbError::Codec(format!("unknown value tag {tag}"))),
        }
    }

    /// Reads an attribute-value map.
    pub fn attribute_values(&mut self) -> Result<AttributeValues, CbError> {
        let count = self.u16()? as usize;
        let mut values = AttributeValues::new();
        for _ in 0..count {
            let id = AttributeId(self.u16()?);
            let value = self.value()?;
            values.insert(id, value);
        }
        Ok(values)
    }
}

/// A writer that builds an encoded payload.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer { buf: BytesMut::with_capacity(128) }
    }

    /// Finishes encoding and returns the payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf.to_vec()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Writes a big-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.put_u16(v);
        self
    }

    /// Writes a big-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32(v);
        self
    }

    /// Writes a big-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64(v);
        self
    }

    /// Writes a big-endian `f64`.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.put_f64(v);
        self
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_u32(v.len() as u32);
        self.buf.put_slice(v);
        self
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Writes a cluster address.
    pub fn addr(&mut self, a: Addr) -> &mut Self {
        self.u16(a.node.0).u16(a.port.0)
    }

    /// Writes a simulated timestamp.
    pub fn micros(&mut self, t: Micros) -> &mut Self {
        self.u64(t.0)
    }

    /// Writes one typed [`Value`].
    pub fn value(&mut self, v: &Value) -> &mut Self {
        match v {
            Value::Bool(b) => {
                self.u8(0).u8(u8::from(*b));
            }
            Value::U32(x) => {
                self.u8(1).u32(*x);
            }
            Value::F64(x) => {
                self.u8(2).f64(*x);
            }
            Value::Vec3(x) => {
                self.u8(3).f64(x[0]).f64(x[1]).f64(x[2]);
            }
            Value::Text(s) => {
                self.u8(4).string(s);
            }
            Value::Bytes(b) => {
                self.u8(5).bytes(b);
            }
        }
        self
    }

    /// Writes an attribute-value map.
    pub fn attribute_values(&mut self, values: &AttributeValues) -> &mut Self {
        self.u16(values.len() as u16);
        for (id, value) in values {
            self.u16(id.0);
            self.value(value);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut w = Writer::new();
        w.u8(7)
            .u16(300)
            .u32(70_000)
            .u64(1 << 40)
            .f64(-2.5)
            .string("crane")
            .addr(Addr::new(NodeId(3), Port(9)));
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.f64().unwrap(), -2.5);
        assert_eq!(r.string().unwrap(), "crane");
        assert_eq!(r.addr().unwrap(), Addr::new(NodeId(3), Port(9)));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn value_roundtrip_all_variants() {
        let values = vec![
            Value::Bool(true),
            Value::U32(42),
            Value::F64(3.125),
            Value::Vec3([1.0, -2.0, 0.5]),
            Value::Text("lift the cargo".to_owned()),
            Value::Bytes(vec![0, 1, 2, 255]),
        ];
        let mut w = Writer::new();
        for v in &values {
            w.value(v);
        }
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        for v in &values {
            assert_eq!(&r.value().unwrap(), v);
        }
    }

    #[test]
    fn attribute_values_roundtrip() {
        let mut values = AttributeValues::new();
        values.insert(AttributeId(0), Value::F64(1.25));
        values.insert(AttributeId(3), Value::Vec3([0.0, 9.8, 0.0]));
        values.insert(AttributeId(7), Value::Text("ok".into()));
        let mut w = Writer::new();
        w.attribute_values(&values);
        let buf = w.finish();
        let decoded = Reader::new(&buf).attribute_values().unwrap();
        assert_eq!(decoded, values);
    }

    #[test]
    fn truncated_message_is_a_codec_error() {
        let mut w = Writer::new();
        w.u64(99);
        let buf = w.finish();
        let mut r = Reader::new(&buf[..4]);
        assert!(matches!(r.u64(), Err(CbError::Codec(_))));
    }

    #[test]
    fn unknown_value_tag_is_an_error() {
        let buf = [200u8, 0, 0];
        let mut r = Reader::new(&buf);
        assert!(matches!(r.value(), Err(CbError::Codec(_))));
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut w = Writer::new();
        w.bytes(&[0xff, 0xfe]);
        let buf = w.finish();
        assert!(matches!(Reader::new(&buf).string(), Err(CbError::Codec(_))));
    }
}
