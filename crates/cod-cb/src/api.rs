//! The service interface seen by a Logical Process.
//!
//! Simulator modules (dashboard, dynamics, visual display, ...) are written
//! against the object-safe [`CbApi`] trait, so the same module code runs no
//! matter which transport the resident CB uses or which computer it has been
//! placed on. [`LpContext`] is the concrete implementation that borrows the
//! kernel for the duration of one module step.

use crate::error::CbError;
use crate::fom::{AttributeValues, ClassRegistry, InteractionClassId, ObjectClassId};
use crate::kernel::{CbKernel, InteractionMessage, LpId, ObjectId, Reflection};
use cod_net::{Micros, Transport};

/// The HLA-flavoured services a Logical Process may call on its resident CB.
pub trait CbApi {
    /// Current simulation time of the resident CB.
    fn now(&self) -> Micros;

    /// The id of the calling LP.
    fn lp_id(&self) -> LpId;

    /// The shared federation object model.
    fn fom(&self) -> &ClassRegistry;

    /// Declares that this LP publishes `class`.
    ///
    /// # Errors
    ///
    /// Returns an error if the class is not declared in the FOM.
    fn publish_object_class(&mut self, class: ObjectClassId) -> Result<(), CbError>;

    /// Declares that this LP subscribes to `class`.
    ///
    /// # Errors
    ///
    /// Returns an error if the class is not declared in the FOM.
    fn subscribe_object_class(&mut self, class: ObjectClassId) -> Result<(), CbError>;

    /// Declares that this LP wants to receive interactions of `class`.
    ///
    /// # Errors
    ///
    /// Returns an error if the interaction class is not declared in the FOM.
    fn subscribe_interaction_class(&mut self, class: InteractionClassId) -> Result<(), CbError>;

    /// Registers a new object instance of a published class.
    ///
    /// # Errors
    ///
    /// Returns an error if this LP has not published `class`.
    fn register_object(&mut self, class: ObjectClassId) -> Result<ObjectId, CbError>;

    /// Pushes new attribute values for an object owned by this LP
    /// (*Update Attribute Values*), timestamped with the current CB time.
    ///
    /// # Errors
    ///
    /// Returns an error if the object is unknown or not owned by this LP.
    fn update_attributes(
        &mut self,
        object: ObjectId,
        values: AttributeValues,
    ) -> Result<(), CbError>;

    /// Sends an interaction of `class` with the given parameters.
    ///
    /// # Errors
    ///
    /// Returns an error if the interaction class is not declared in the FOM.
    fn send_interaction(
        &mut self,
        class: InteractionClassId,
        parameters: AttributeValues,
    ) -> Result<(), CbError>;

    /// Pulls the reflections (*Reflect Attribute Values*) queued for this LP.
    fn reflections(&mut self) -> Vec<Reflection>;

    /// Pulls the interactions queued for this LP.
    fn interactions(&mut self) -> Vec<InteractionMessage>;
}

/// A borrow of the resident CB kernel scoped to one LP.
#[derive(Debug)]
pub struct LpContext<'a, T: Transport> {
    kernel: &'a mut CbKernel<T>,
    lp: LpId,
}

impl<'a, T: Transport> LpContext<'a, T> {
    /// Creates a context for `lp` backed by `kernel`.
    pub fn new(kernel: &'a mut CbKernel<T>, lp: LpId) -> LpContext<'a, T> {
        LpContext { kernel, lp }
    }
}

impl<'a, T: Transport> CbApi for LpContext<'a, T> {
    fn now(&self) -> Micros {
        self.kernel.now()
    }

    fn lp_id(&self) -> LpId {
        self.lp
    }

    fn fom(&self) -> &ClassRegistry {
        self.kernel.fom()
    }

    fn publish_object_class(&mut self, class: ObjectClassId) -> Result<(), CbError> {
        self.kernel.publish_object_class(self.lp, class)
    }

    fn subscribe_object_class(&mut self, class: ObjectClassId) -> Result<(), CbError> {
        self.kernel.subscribe_object_class(self.lp, class)
    }

    fn subscribe_interaction_class(&mut self, class: InteractionClassId) -> Result<(), CbError> {
        self.kernel.subscribe_interaction_class(self.lp, class)
    }

    fn register_object(&mut self, class: ObjectClassId) -> Result<ObjectId, CbError> {
        self.kernel.register_object_instance(self.lp, class)
    }

    fn update_attributes(
        &mut self,
        object: ObjectId,
        values: AttributeValues,
    ) -> Result<(), CbError> {
        let now = self.kernel.now();
        self.kernel.update_attribute_values(self.lp, object, values, now)
    }

    fn send_interaction(
        &mut self,
        class: InteractionClassId,
        parameters: AttributeValues,
    ) -> Result<(), CbError> {
        let now = self.kernel.now();
        self.kernel.send_interaction(self.lp, class, parameters, now)
    }

    fn reflections(&mut self) -> Vec<Reflection> {
        self.kernel.reflections(self.lp)
    }

    fn interactions(&mut self) -> Vec<InteractionMessage> {
        self.kernel.interactions(self.lp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fom::Value;
    use cod_net::{LanConfig, SimLan};

    #[test]
    fn context_delegates_to_kernel() {
        let mut fom = ClassRegistry::new();
        let crane = fom.register_object_class("CraneState", &["boom_angle"]).unwrap();
        let alarm = fom.register_interaction_class("Alarm", &["code"]).unwrap();
        let lan = SimLan::shared(LanConfig::ideal(1));
        let mut kernel = CbKernel::new(SimLan::attach(&lan, "pc"), fom.clone());
        let producer = kernel.register_lp("producer");
        let consumer = kernel.register_lp("consumer");

        {
            let mut ctx = LpContext::new(&mut kernel, consumer);
            ctx.subscribe_object_class(crane).unwrap();
            ctx.subscribe_interaction_class(alarm).unwrap();
            assert_eq!(ctx.lp_id(), consumer);
            assert_eq!(ctx.fom().object_class_count(), 1);
        }

        let object;
        {
            let mut ctx = LpContext::new(&mut kernel, producer);
            ctx.publish_object_class(crane).unwrap();
            object = ctx.register_object(crane).unwrap();
            let angle = ctx.fom().attribute_id(crane, "boom_angle").unwrap();
            ctx.update_attributes(object, [(angle, Value::F64(0.4))].into()).unwrap();
            let code = ctx.fom().parameter_id(alarm, "code").unwrap();
            ctx.send_interaction(alarm, [(code, Value::U32(2))].into()).unwrap();
        }

        let mut ctx = LpContext::new(&mut kernel, consumer);
        let reflections = ctx.reflections();
        assert_eq!(reflections.len(), 1);
        assert_eq!(reflections[0].object, object);
        assert_eq!(ctx.interactions().len(), 1);
    }

    #[test]
    fn api_is_object_safe() {
        fn _takes_dyn(_api: &mut dyn CbApi) {}
    }
}
