//! Federation Object Model (FOM): the declared object and interaction classes.
//!
//! The paper adopts the HLA notions of *Publish Object Class* and *Subscribe
//! Object Class*; this module holds the class/attribute declarations that both
//! sides of a virtual channel agree on. Every computer of the cluster is
//! compiled against the same [`ClassRegistry`], exactly as every federate of an
//! HLA federation shares the same FOM file.

use crate::error::CbError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies an object class declared in the FOM.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ObjectClassId(pub u16);

/// Identifies an interaction class declared in the FOM.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct InteractionClassId(pub u16);

/// Identifies an attribute within an object class.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AttributeId(pub u16);

/// A typed attribute or parameter value carried over the Communication Backbone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Boolean flag (e.g. an alarm state).
    Bool(bool),
    /// Unsigned integer (e.g. a score, a frame number).
    U32(u32),
    /// Double-precision scalar (e.g. a boom angle in radians).
    F64(f64),
    /// Three-component vector (e.g. a position or velocity).
    Vec3([f64; 3]),
    /// Short text (e.g. a scenario phase name).
    Text(String),
    /// Raw bytes for anything else.
    Bytes(Vec<u8>),
}

impl Value {
    /// Returns the scalar if this value is an `F64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the vector if this value is a `Vec3`.
    pub fn as_vec3(&self) -> Option<[f64; 3]> {
        match self {
            Value::Vec3(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the flag if this value is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the integer if this value is a `U32`.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Value::U32(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the text if this value is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(v) => write!(f, "{v}"),
            Value::U32(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:.4}"),
            Value::Vec3(v) => write!(f, "[{:.3}, {:.3}, {:.3}]", v[0], v[1], v[2]),
            Value::Text(v) => write!(f, "{v}"),
            Value::Bytes(v) => write!(f, "<{} bytes>", v.len()),
        }
    }
}

/// A set of attribute values keyed by attribute id — the payload of an
/// *Update Attribute Values* / *Reflect Attribute Values* exchange.
pub type AttributeValues = BTreeMap<AttributeId, Value>;

/// Declaration of one object class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectClassDef {
    /// Class name, unique within the FOM.
    pub name: String,
    /// Attribute names; the index of a name is its [`AttributeId`].
    pub attributes: Vec<String>,
}

/// Declaration of one interaction class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InteractionClassDef {
    /// Class name, unique within the FOM.
    pub name: String,
    /// Parameter names; the index of a name is its [`AttributeId`].
    pub parameters: Vec<String>,
}

/// The shared declaration of every object and interaction class in the federation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassRegistry {
    object_classes: Vec<ObjectClassDef>,
    interaction_classes: Vec<InteractionClassDef>,
}

impl ClassRegistry {
    /// Creates an empty registry.
    pub fn new() -> ClassRegistry {
        ClassRegistry::default()
    }

    /// Declares an object class with its attributes and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`CbError::DuplicateName`] if the class name or an attribute
    /// name within the class is repeated.
    pub fn register_object_class(
        &mut self,
        name: &str,
        attributes: &[&str],
    ) -> Result<ObjectClassId, CbError> {
        if self.object_classes.iter().any(|c| c.name == name) {
            return Err(CbError::DuplicateName(name.to_owned()));
        }
        let mut seen = std::collections::BTreeSet::new();
        for a in attributes {
            if !seen.insert(*a) {
                return Err(CbError::DuplicateName(format!("{name}.{a}")));
            }
        }
        let id = ObjectClassId(self.object_classes.len() as u16);
        self.object_classes.push(ObjectClassDef {
            name: name.to_owned(),
            attributes: attributes.iter().map(|s| (*s).to_owned()).collect(),
        });
        Ok(id)
    }

    /// Declares an interaction class with its parameters and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`CbError::DuplicateName`] if the class name is repeated.
    pub fn register_interaction_class(
        &mut self,
        name: &str,
        parameters: &[&str],
    ) -> Result<InteractionClassId, CbError> {
        if self.interaction_classes.iter().any(|c| c.name == name) {
            return Err(CbError::DuplicateName(name.to_owned()));
        }
        let id = InteractionClassId(self.interaction_classes.len() as u16);
        self.interaction_classes.push(InteractionClassDef {
            name: name.to_owned(),
            parameters: parameters.iter().map(|s| (*s).to_owned()).collect(),
        });
        Ok(id)
    }

    /// Looks up an object class by name.
    pub fn object_class_by_name(&self, name: &str) -> Option<ObjectClassId> {
        self.object_classes.iter().position(|c| c.name == name).map(|i| ObjectClassId(i as u16))
    }

    /// Looks up an interaction class by name.
    pub fn interaction_class_by_name(&self, name: &str) -> Option<InteractionClassId> {
        self.interaction_classes
            .iter()
            .position(|c| c.name == name)
            .map(|i| InteractionClassId(i as u16))
    }

    /// The definition of an object class, if it exists.
    pub fn object_class(&self, id: ObjectClassId) -> Option<&ObjectClassDef> {
        self.object_classes.get(id.0 as usize)
    }

    /// The definition of an interaction class, if it exists.
    pub fn interaction_class(&self, id: InteractionClassId) -> Option<&InteractionClassDef> {
        self.interaction_classes.get(id.0 as usize)
    }

    /// The id of an attribute of an object class, looked up by name.
    pub fn attribute_id(&self, class: ObjectClassId, attribute: &str) -> Option<AttributeId> {
        self.object_class(class)?
            .attributes
            .iter()
            .position(|a| a == attribute)
            .map(|i| AttributeId(i as u16))
    }

    /// The id of a parameter of an interaction class, looked up by name.
    pub fn parameter_id(&self, class: InteractionClassId, parameter: &str) -> Option<AttributeId> {
        self.interaction_class(class)?
            .parameters
            .iter()
            .position(|p| p == parameter)
            .map(|i| AttributeId(i as u16))
    }

    /// Number of declared object classes.
    pub fn object_class_count(&self) -> usize {
        self.object_classes.len()
    }

    /// Number of declared interaction classes.
    pub fn interaction_class_count(&self) -> usize {
        self.interaction_classes.len()
    }

    /// True when `id` names a declared object class.
    pub fn contains_object_class(&self, id: ObjectClassId) -> bool {
        (id.0 as usize) < self.object_classes.len()
    }

    /// True when `id` names a declared interaction class.
    pub fn contains_interaction_class(&self, id: InteractionClassId) -> bool {
        (id.0 as usize) < self.interaction_classes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (ClassRegistry, ObjectClassId, InteractionClassId) {
        let mut r = ClassRegistry::new();
        let crane = r
            .register_object_class("CraneState", &["position", "boom_angle", "cable_length"])
            .unwrap();
        let collision =
            r.register_interaction_class("CollisionEvent", &["location", "impulse"]).unwrap();
        (r, crane, collision)
    }

    #[test]
    fn lookup_by_name_and_id() {
        let (r, crane, collision) = sample();
        assert_eq!(r.object_class_by_name("CraneState"), Some(crane));
        assert_eq!(r.interaction_class_by_name("CollisionEvent"), Some(collision));
        assert_eq!(r.object_class(crane).unwrap().attributes.len(), 3);
        assert_eq!(r.attribute_id(crane, "boom_angle"), Some(AttributeId(1)));
        assert_eq!(r.parameter_id(collision, "impulse"), Some(AttributeId(1)));
        assert_eq!(r.attribute_id(crane, "missing"), None);
        assert!(r.contains_object_class(crane));
        assert!(!r.contains_object_class(ObjectClassId(99)));
    }

    #[test]
    fn duplicate_class_name_rejected() {
        let (mut r, _, _) = sample();
        assert!(matches!(
            r.register_object_class("CraneState", &["x"]),
            Err(CbError::DuplicateName(_))
        ));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let mut r = ClassRegistry::new();
        assert!(matches!(
            r.register_object_class("Bad", &["a", "a"]),
            Err(CbError::DuplicateName(_))
        ));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::F64(3.5).as_f64(), Some(3.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::U32(7).as_u32(), Some(7));
        assert_eq!(Value::Vec3([1.0, 2.0, 3.0]).as_vec3(), Some([1.0, 2.0, 3.0]));
        assert_eq!(Value::Text("go".into()).as_text(), Some("go"));
        assert_eq!(Value::F64(1.0).as_bool(), None);
    }

    #[test]
    fn value_display_is_nonempty() {
        for v in [
            Value::Bool(false),
            Value::U32(1),
            Value::F64(0.5),
            Value::Vec3([0.0; 3]),
            Value::Text("t".into()),
            Value::Bytes(vec![1, 2]),
        ] {
            assert!(!format!("{v}").is_empty());
        }
    }
}
