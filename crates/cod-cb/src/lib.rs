//! The Communication Backbone (CB) — the paper's primary contribution.
//!
//! The CB is a *distribution socket*: a transparent communication layer that
//! every computer of the Cluster Of Desktop computers (COD) runs, so that
//! Logical Processes (LPs) can exchange simulation state without knowing
//! whether their peers live on the same machine or across the network
//! (Huang et al., ICDCS 2001, §2).
//!
//! The design follows the paper closely:
//!
//! * **HLA-flavoured services** ([`fom`], [`api`]): LPs *publish* and
//!   *subscribe* object classes, register object instances, push state with
//!   *Update Attribute Values* and pull it with *Reflect Attribute Values*.
//! * **Initialization protocol** ([`protocol`], [`kernel`]): a subscribing CB
//!   broadcasts a SUBSCRIPTION message at a constant interval until a
//!   publishing CB answers with ACKNOWLEDGE; a CHANNEL CONNECTION exchange then
//!   establishes a *virtual channel* between the two backbone instances
//!   (paper §2.3). Because every CB keeps listening while it runs, an LP (for
//!   example an extra display channel) can join the running system at any time.
//! * **Virtual channels** ([`channel`]): entry mappings between the publication
//!   table of one CB and the subscription table of another (paper §2.2, Fig. 2).
//! * **Push/pull routing** ([`kernel`]): publishers push updates into their CB;
//!   the CB routes them over the virtual channels; subscribers pull reflections
//!   out of their CB at their own pace.
//! * **Conservative time management** ([`timesync`]): the asynchronous
//!   distributed-simulation scheme of Chandy & Misra referenced by the paper,
//!   implemented as lookahead plus null messages.
//!
//! # A two-computer quickstart
//!
//! ```
//! use cod_cb::{CbKernel, ClassRegistry, Value};
//! use cod_net::{LanConfig, SimLan, Micros};
//!
//! // A tiny FOM shared by every computer of the cluster.
//! let mut fom = ClassRegistry::new();
//! let crane_state = fom.register_object_class("CraneState", &["boom_angle"]).unwrap();
//!
//! // Two computers on the simulated LAN, each running a CB.
//! let lan = SimLan::shared(LanConfig::fast_ethernet(7));
//! let mut cb_dyn = CbKernel::new(SimLan::attach(&lan, "dynamics-pc"), fom.clone());
//! let mut cb_vis = CbKernel::new(SimLan::attach(&lan, "visual-pc"), fom.clone());
//!
//! // One LP per computer.
//! let dynamics = cb_dyn.register_lp("dynamics");
//! let visual = cb_vis.register_lp("visual");
//! cb_dyn.publish_object_class(dynamics, crane_state).unwrap();
//! cb_vis.subscribe_object_class(visual, crane_state).unwrap();
//!
//! // Let the initialization protocol build the virtual channel.
//! let mut now = Micros::ZERO;
//! for _ in 0..20 {
//!     cb_dyn.tick(now).unwrap();
//!     cb_vis.tick(now).unwrap();
//!     now += Micros::from_millis(10);
//!     SimLan::advance_to(&lan, now);
//! }
//! assert!(cb_dyn.established_channel_count() >= 1);
//!
//! // Push an update from the publisher; pull the reflection at the subscriber.
//! let object = cb_dyn.register_object_instance(dynamics, crane_state).unwrap();
//! let attr = fom.attribute_id(crane_state, "boom_angle").unwrap();
//! cb_dyn.update_attribute_values(dynamics, object, [(attr, Value::F64(42.5))].into(), now).unwrap();
//! for _ in 0..4 {
//!     cb_dyn.tick(now).unwrap();
//!     cb_vis.tick(now).unwrap();
//!     now += Micros::from_millis(10);
//!     SimLan::advance_to(&lan, now);
//! }
//! let reflections = cb_vis.reflections(visual);
//! assert_eq!(reflections.len(), 1);
//! assert_eq!(reflections[0].values[&attr], Value::F64(42.5));
//! ```

pub mod api;
pub mod channel;
pub mod codec;
pub mod error;
pub mod fom;
pub mod kernel;
pub mod protocol;
pub mod stats;
pub mod tables;
pub mod timesync;
pub mod wire;

pub use api::{CbApi, LpContext};
pub use channel::{ChannelId, ChannelRole, ChannelTable, VirtualChannel};
pub use error::CbError;
pub use fom::{
    AttributeId, AttributeValues, ClassRegistry, InteractionClassId, ObjectClassId, Value,
};
pub use kernel::{CbConfig, CbKernel, InteractionMessage, LpId, ObjectId, Reflection};
pub use protocol::{ChannelSetupState, PendingSubscription};
pub use stats::CbStats;
pub use tables::{PublicationTable, SubscriptionTable};
pub use timesync::{LookaheadClock, TimeManager};
pub use wire::WireMessage;
