//! Wire messages exchanged between Communication Backbone instances.
//!
//! These are the datagrams that actually cross the cluster LAN. The protocol
//! messages mirror the paper's §2.3 vocabulary (SUBSCRIPTION, ACKNOWLEDGE,
//! CHANNEL CONNECTION) plus the data-plane messages that implement the
//! *Update Attribute Values* / *Reflect Attribute Values* services and the
//! Chandy–Misra null messages used for conservative time management.

use crate::channel::ChannelId;
use crate::codec::{Reader, Writer};
use crate::error::CbError;
use crate::fom::{AttributeValues, InteractionClassId, ObjectClassId};
use crate::kernel::{LpId, ObjectId};
use cod_net::{Addr, Micros};

/// A message exchanged between two CBs (or broadcast to all CBs).
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// Broadcast periodically by a subscribing CB until acknowledged (paper §2.3).
    Subscription {
        /// CB that hosts the subscribing LP.
        subscriber_cb: Addr,
        /// The subscribing LP.
        subscriber_lp: LpId,
        /// Object class being subscribed.
        class: ObjectClassId,
    },
    /// Sent by a publishing CB in response to a matching subscription.
    Acknowledge {
        /// CB that hosts the publishing LP.
        publisher_cb: Addr,
        /// The publishing LP.
        publisher_lp: LpId,
        /// Object class being acknowledged.
        class: ObjectClassId,
    },
    /// Sent by the subscribing CB to the acknowledging CB to build the virtual channel.
    ChannelConnection {
        /// Channel identifier allocated by the subscriber CB.
        channel: ChannelId,
        /// CB that hosts the subscribing LP.
        subscriber_cb: Addr,
        /// The subscribing LP.
        subscriber_lp: LpId,
        /// The publishing LP the channel connects to.
        publisher_lp: LpId,
        /// Object class carried by the channel.
        class: ObjectClassId,
    },
    /// Confirms that the virtual channel has been recorded by the publisher CB
    /// (the "ACKNOWLEDGE received again" of the paper).
    ChannelAck {
        /// The established channel.
        channel: ChannelId,
    },
    /// Data-plane push: *Update Attribute Values* routed over a virtual channel.
    UpdateAttributes {
        /// Channel the update travels on.
        channel: ChannelId,
        /// Object instance being updated.
        object: ObjectId,
        /// The object's class.
        class: ObjectClassId,
        /// Simulation timestamp of the update.
        timestamp: Micros,
        /// Attribute values.
        values: AttributeValues,
    },
    /// A broadcast interaction (transient event such as a collision).
    Interaction {
        /// Interaction class.
        class: InteractionClassId,
        /// Sending LP.
        sender_lp: LpId,
        /// Simulation timestamp.
        timestamp: Micros,
        /// Parameter values.
        parameters: AttributeValues,
    },
    /// Chandy–Misra null message: a promise that the sender will not emit any
    /// update on this channel with a timestamp earlier than `time`.
    NullMessage {
        /// Channel the promise applies to.
        channel: ChannelId,
        /// Lower bound on future message timestamps.
        time: Micros,
    },
    /// Graceful withdrawal of an LP; its channels are torn down.
    Withdraw {
        /// The departing LP.
        lp: LpId,
    },
}

const TAG_SUBSCRIPTION: u8 = 1;
const TAG_ACKNOWLEDGE: u8 = 2;
const TAG_CHANNEL_CONNECTION: u8 = 3;
const TAG_CHANNEL_ACK: u8 = 4;
const TAG_UPDATE: u8 = 5;
const TAG_INTERACTION: u8 = 6;
const TAG_NULL: u8 = 7;
const TAG_WITHDRAW: u8 = 8;

impl WireMessage {
    /// Encodes the message into a datagram payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            WireMessage::Subscription { subscriber_cb, subscriber_lp, class } => {
                w.u8(TAG_SUBSCRIPTION).addr(*subscriber_cb).u64(subscriber_lp.0).u16(class.0);
            }
            WireMessage::Acknowledge { publisher_cb, publisher_lp, class } => {
                w.u8(TAG_ACKNOWLEDGE).addr(*publisher_cb).u64(publisher_lp.0).u16(class.0);
            }
            WireMessage::ChannelConnection {
                channel,
                subscriber_cb,
                subscriber_lp,
                publisher_lp,
                class,
            } => {
                w.u8(TAG_CHANNEL_CONNECTION)
                    .u64(channel.0)
                    .addr(*subscriber_cb)
                    .u64(subscriber_lp.0)
                    .u64(publisher_lp.0)
                    .u16(class.0);
            }
            WireMessage::ChannelAck { channel } => {
                w.u8(TAG_CHANNEL_ACK).u64(channel.0);
            }
            WireMessage::UpdateAttributes { channel, object, class, timestamp, values } => {
                w.u8(TAG_UPDATE)
                    .u64(channel.0)
                    .u64(object.0)
                    .u16(class.0)
                    .micros(*timestamp)
                    .attribute_values(values);
            }
            WireMessage::Interaction { class, sender_lp, timestamp, parameters } => {
                w.u8(TAG_INTERACTION)
                    .u16(class.0)
                    .u64(sender_lp.0)
                    .micros(*timestamp)
                    .attribute_values(parameters);
            }
            WireMessage::NullMessage { channel, time } => {
                w.u8(TAG_NULL).u64(channel.0).micros(*time);
            }
            WireMessage::Withdraw { lp } => {
                w.u8(TAG_WITHDRAW).u64(lp.0);
            }
        }
        w.finish()
    }

    /// Decodes a message from a datagram payload.
    ///
    /// # Errors
    ///
    /// Returns [`CbError::Codec`] when the payload is truncated or malformed.
    pub fn decode(payload: &[u8]) -> Result<WireMessage, CbError> {
        let mut r = Reader::new(payload);
        let msg = match r.u8()? {
            TAG_SUBSCRIPTION => WireMessage::Subscription {
                subscriber_cb: r.addr()?,
                subscriber_lp: LpId(r.u64()?),
                class: ObjectClassId(r.u16()?),
            },
            TAG_ACKNOWLEDGE => WireMessage::Acknowledge {
                publisher_cb: r.addr()?,
                publisher_lp: LpId(r.u64()?),
                class: ObjectClassId(r.u16()?),
            },
            TAG_CHANNEL_CONNECTION => WireMessage::ChannelConnection {
                channel: ChannelId(r.u64()?),
                subscriber_cb: r.addr()?,
                subscriber_lp: LpId(r.u64()?),
                publisher_lp: LpId(r.u64()?),
                class: ObjectClassId(r.u16()?),
            },
            TAG_CHANNEL_ACK => WireMessage::ChannelAck { channel: ChannelId(r.u64()?) },
            TAG_UPDATE => WireMessage::UpdateAttributes {
                channel: ChannelId(r.u64()?),
                object: ObjectId(r.u64()?),
                class: ObjectClassId(r.u16()?),
                timestamp: r.micros()?,
                values: r.attribute_values()?,
            },
            TAG_INTERACTION => WireMessage::Interaction {
                class: InteractionClassId(r.u16()?),
                sender_lp: LpId(r.u64()?),
                timestamp: r.micros()?,
                parameters: r.attribute_values()?,
            },
            TAG_NULL => {
                WireMessage::NullMessage { channel: ChannelId(r.u64()?), time: r.micros()? }
            }
            TAG_WITHDRAW => WireMessage::Withdraw { lp: LpId(r.u64()?) },
            tag => return Err(CbError::Codec(format!("unknown wire message tag {tag}"))),
        };
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fom::{AttributeId, Value};
    use cod_net::{NodeId, Port};
    use proptest::prelude::*;

    fn sample_values() -> AttributeValues {
        let mut v = AttributeValues::new();
        v.insert(AttributeId(0), Value::Vec3([1.0, 2.0, 3.0]));
        v.insert(AttributeId(1), Value::F64(0.25));
        v.insert(AttributeId(2), Value::Bool(true));
        v
    }

    fn all_samples() -> Vec<WireMessage> {
        vec![
            WireMessage::Subscription {
                subscriber_cb: Addr::new(NodeId(2), Port(1)),
                subscriber_lp: LpId(0x0002_0000_0001),
                class: ObjectClassId(4),
            },
            WireMessage::Acknowledge {
                publisher_cb: Addr::new(NodeId(5), Port(1)),
                publisher_lp: LpId(77),
                class: ObjectClassId(4),
            },
            WireMessage::ChannelConnection {
                channel: ChannelId(9),
                subscriber_cb: Addr::new(NodeId(2), Port(1)),
                subscriber_lp: LpId(3),
                publisher_lp: LpId(77),
                class: ObjectClassId(4),
            },
            WireMessage::ChannelAck { channel: ChannelId(9) },
            WireMessage::UpdateAttributes {
                channel: ChannelId(9),
                object: ObjectId(12),
                class: ObjectClassId(4),
                timestamp: Micros(123_456),
                values: sample_values(),
            },
            WireMessage::Interaction {
                class: InteractionClassId(2),
                sender_lp: LpId(3),
                timestamp: Micros(50),
                parameters: sample_values(),
            },
            WireMessage::NullMessage { channel: ChannelId(1), time: Micros(99) },
            WireMessage::Withdraw { lp: LpId(3) },
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        for msg in all_samples() {
            let encoded = msg.encode();
            let decoded = WireMessage::decode(&encoded).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(WireMessage::decode(&[]).is_err());
        assert!(WireMessage::decode(&[99, 1, 2, 3]).is_err());
    }

    #[test]
    fn truncation_is_rejected_for_every_variant() {
        for msg in all_samples() {
            let encoded = msg.encode();
            for cut in 1..encoded.len() {
                assert!(
                    WireMessage::decode(&encoded[..cut]).is_err(),
                    "truncated {msg:?} at {cut} unexpectedly decoded"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_update_roundtrip(channel in any::<u64>(), object in any::<u64>(), class in any::<u16>(),
                                 ts in any::<u64>(), scalar in -1e6..1e6f64) {
            let mut values = AttributeValues::new();
            values.insert(AttributeId(0), Value::F64(scalar));
            let msg = WireMessage::UpdateAttributes {
                channel: ChannelId(channel),
                object: ObjectId(object),
                class: ObjectClassId(class),
                timestamp: Micros(ts),
                values,
            };
            prop_assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
        }

        #[test]
        fn prop_random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = WireMessage::decode(&data);
        }
    }
}
