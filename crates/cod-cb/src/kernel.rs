//! The Communication Backbone kernel that every computer of the COD executes.
//!
//! One [`CbKernel`] runs per computer. Local Logical Processes register with it,
//! declare what they publish and subscribe (paper §2.1), and the kernel takes
//! care of discovering matching publishers/subscribers on other computers,
//! establishing virtual channels with them, and routing attribute updates both
//! locally (co-resident LPs) and remotely (across the LAN) — the LPs themselves
//! never need to know where their peers run.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::channel::{ChannelId, ChannelRole, ChannelTable, VirtualChannel};
use crate::error::CbError;
use crate::fom::{AttributeValues, ClassRegistry, InteractionClassId, ObjectClassId};
use crate::protocol::PendingSubscription;
use crate::stats::CbStats;
use crate::tables::{PublicationTable, SubscriptionTable};
use crate::wire::WireMessage;
use cod_net::{Addr, Destination, Micros, Transport};
use serde::{Deserialize, Serialize};

/// Identifies a Logical Process cluster-wide.
///
/// The high 32 bits carry the node id of the CB the LP registered with, the low
/// 32 bits a per-CB counter, so ids are globally unique without coordination.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LpId(pub u64);

impl LpId {
    /// Composes an LP id from its home node and local sequence number.
    pub fn compose(node: u16, seq: u32) -> LpId {
        LpId(((node as u64) << 32) | seq as u64)
    }

    /// The node the LP registered on.
    pub fn node(self) -> u16 {
        (self.0 >> 32) as u16
    }
}

/// Identifies an object instance cluster-wide (same composition scheme as [`LpId`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Composes an object id from its home node and local sequence number.
    pub fn compose(node: u16, seq: u32) -> ObjectId {
        ObjectId(((node as u64) << 32) | seq as u64)
    }
}

/// A *Reflect Attribute Values* delivery pulled by a subscriber LP.
#[derive(Debug, Clone, PartialEq)]
pub struct Reflection {
    /// The object instance that was updated.
    pub object: ObjectId,
    /// The object's class.
    pub class: ObjectClassId,
    /// The updated attribute values.
    pub values: AttributeValues,
    /// Simulation timestamp attached by the publisher.
    pub timestamp: Micros,
    /// Virtual channel the update arrived on; `None` when the publisher is
    /// co-resident and the update never touched the network.
    pub channel: Option<ChannelId>,
}

/// An interaction (transient event) delivered to a subscriber LP.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionMessage {
    /// Interaction class.
    pub class: InteractionClassId,
    /// The LP that sent the interaction.
    pub sender: LpId,
    /// Parameter values.
    pub parameters: AttributeValues,
    /// Simulation timestamp attached by the sender.
    pub timestamp: Micros,
}

/// Tunable parameters of the initialization protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CbConfig {
    /// Interval between SUBSCRIPTION broadcasts while unmatched (paper: "a constant time interval").
    pub subscription_broadcast_interval: Micros,
    /// Interval between re-advertisements once at least one channel exists,
    /// allowing late-joining publishers to be discovered.
    pub readvertise_interval: Micros,
}

impl Default for CbConfig {
    fn default() -> Self {
        CbConfig {
            subscription_broadcast_interval: Micros::from_millis(50),
            readvertise_interval: Micros::from_secs(2),
        }
    }
}

#[derive(Debug)]
struct LocalLp {
    name: String,
    reflections: VecDeque<Reflection>,
    interactions: VecDeque<InteractionMessage>,
    interaction_subscriptions: BTreeSet<InteractionClassId>,
}

/// The Communication Backbone kernel for one computer of the cluster.
#[derive(Debug)]
pub struct CbKernel<T: Transport> {
    transport: T,
    addr: Addr,
    fom: ClassRegistry,
    config: CbConfig,
    now: Micros,
    lps: BTreeMap<LpId, LocalLp>,
    next_lp_seq: u32,
    next_object_seq: u32,
    next_channel_seq: u32,
    publications: PublicationTable,
    subscriptions: SubscriptionTable,
    pending: Vec<PendingSubscription>,
    channels: ChannelTable,
    objects: BTreeMap<ObjectId, (LpId, ObjectClassId)>,
    channel_time_bounds: BTreeMap<ChannelId, Micros>,
    connect_last_sent: BTreeMap<ChannelId, Micros>,
    outbox: Vec<(Destination, WireMessage)>,
    stats: CbStats,
}

impl<T: Transport> CbKernel<T> {
    /// Creates a kernel with the default protocol configuration.
    pub fn new(transport: T, fom: ClassRegistry) -> CbKernel<T> {
        CbKernel::with_config(transport, fom, CbConfig::default())
    }

    /// Creates a kernel with an explicit protocol configuration.
    pub fn with_config(transport: T, fom: ClassRegistry, config: CbConfig) -> CbKernel<T> {
        let addr = transport.local_addr();
        CbKernel {
            transport,
            addr,
            fom,
            config,
            now: Micros::ZERO,
            lps: BTreeMap::new(),
            next_lp_seq: 0,
            next_object_seq: 0,
            next_channel_seq: 0,
            publications: PublicationTable::new(),
            subscriptions: SubscriptionTable::new(),
            pending: Vec::new(),
            channels: ChannelTable::new(),
            objects: BTreeMap::new(),
            channel_time_bounds: BTreeMap::new(),
            connect_last_sent: BTreeMap::new(),
            outbox: Vec::new(),
            stats: CbStats::default(),
        }
    }

    /// Address of this CB on the cluster network.
    pub fn local_addr(&self) -> Addr {
        self.addr
    }

    /// The federation object model this CB was created with.
    pub fn fom(&self) -> &ClassRegistry {
        &self.fom
    }

    /// Current simulation time as seen by this CB (set by the last `tick`).
    pub fn now(&self) -> Micros {
        self.now
    }

    /// Snapshot of the kernel counters.
    pub fn stats(&self) -> &CbStats {
        &self.stats
    }

    /// Number of fully established virtual channels (both roles).
    pub fn established_channel_count(&self) -> usize {
        self.channels.established_count()
    }

    /// Read access to the full virtual-channel table (used by invariant
    /// checkers to audit cluster-wide channel consistency).
    pub fn channels(&self) -> &ChannelTable {
        &self.channels
    }

    /// The conservative lower bound on future message timestamps for a channel,
    /// derived from data messages and Chandy–Misra null messages received on it.
    pub fn channel_time_bound(&self, channel: ChannelId) -> Option<Micros> {
        self.channel_time_bounds.get(&channel).copied()
    }

    /// Ids of established subscriber-side channels feeding a local LP.
    pub fn incoming_channels(&self, lp: LpId) -> Vec<ChannelId> {
        self.channels
            .iter()
            .filter(|c| c.established && c.role == ChannelRole::Subscriber && c.subscriber_lp == lp)
            .map(|c| c.id)
            .collect()
    }

    /// Resets the kernel's session-evolving state to the canonical session
    /// epoch: pending reflections/interactions are discarded, channel time
    /// bounds and connection-retry timers are cleared, the protocol broadcast
    /// timers are re-anchored at `epoch` and the counters are zeroed. The
    /// long-lived topology — registered LPs, publications, subscriptions,
    /// object instances and established virtual channels — is kept, which is
    /// what makes recycling a simulator cheap: the initialization protocol
    /// does not have to run again.
    ///
    /// Called once at the end of cluster initialization *and* on every session
    /// reset, so a recycled kernel and a freshly initialized one start each
    /// session from bit-identical state.
    pub fn begin_session(&mut self, epoch: Micros) {
        self.now = epoch;
        for lp in self.lps.values_mut() {
            lp.reflections.clear();
            lp.interactions.clear();
        }
        self.channel_time_bounds.clear();
        self.connect_last_sent.clear();
        self.outbox.clear();
        for pending in self.pending.iter_mut() {
            pending.begin_session(epoch);
        }
        self.stats = CbStats::default();
    }

    // ------------------------------------------------------------------
    // LP registration and declaration services
    // ------------------------------------------------------------------

    /// Registers a Logical Process with this CB and returns its id.
    pub fn register_lp(&mut self, name: &str) -> LpId {
        let id = LpId::compose(self.addr.node.0, self.next_lp_seq);
        self.next_lp_seq += 1;
        self.lps.insert(
            id,
            LocalLp {
                name: name.to_owned(),
                reflections: VecDeque::new(),
                interactions: VecDeque::new(),
                interaction_subscriptions: BTreeSet::new(),
            },
        );
        id
    }

    /// Name of a locally registered LP.
    pub fn lp_name(&self, lp: LpId) -> Option<&str> {
        self.lps.get(&lp).map(|l| l.name.as_str())
    }

    /// Removes an LP: its publications, subscriptions and channels are torn
    /// down and a withdrawal notice is broadcast to the other CBs.
    ///
    /// # Errors
    ///
    /// Returns [`CbError::UnknownLp`] if the LP is not registered here.
    pub fn deregister_lp(&mut self, lp: LpId) -> Result<(), CbError> {
        if self.lps.remove(&lp).is_none() {
            return Err(CbError::UnknownLp(lp.0));
        }
        self.publications.remove_lp(lp);
        self.subscriptions.remove_lp(lp);
        self.pending.retain(|p| p.lp != lp);
        self.channels.remove_for_lp(lp);
        self.objects.retain(|_, (owner, _)| *owner != lp);
        self.outbox.push((Destination::Broadcast(self.addr.port), WireMessage::Withdraw { lp }));
        Ok(())
    }

    /// *Publish Object Class*: declares that `lp` will produce updates of `class`.
    ///
    /// # Errors
    ///
    /// Returns an error if the LP or the class is unknown.
    pub fn publish_object_class(&mut self, lp: LpId, class: ObjectClassId) -> Result<(), CbError> {
        self.check_lp(lp)?;
        self.check_object_class(class)?;
        self.publications.insert(lp, class);
        Ok(())
    }

    /// *Subscribe Object Class*: declares that `lp` wants reflections of `class`.
    ///
    /// The CB starts broadcasting the subscription on the next [`CbKernel::tick`].
    ///
    /// # Errors
    ///
    /// Returns an error if the LP or the class is unknown.
    pub fn subscribe_object_class(
        &mut self,
        lp: LpId,
        class: ObjectClassId,
    ) -> Result<(), CbError> {
        self.check_lp(lp)?;
        self.check_object_class(class)?;
        if self.subscriptions.insert(lp, class) {
            self.pending.push(PendingSubscription::new(lp, class, self.now));
        }
        Ok(())
    }

    /// Subscribes `lp` to an interaction class (collision events, alarms, ...).
    ///
    /// # Errors
    ///
    /// Returns an error if the LP or the interaction class is unknown.
    pub fn subscribe_interaction_class(
        &mut self,
        lp: LpId,
        class: InteractionClassId,
    ) -> Result<(), CbError> {
        self.check_lp(lp)?;
        if !self.fom.contains_interaction_class(class) {
            return Err(CbError::UnknownInteractionClass(class));
        }
        self.lps.get_mut(&lp).expect("checked above").interaction_subscriptions.insert(class);
        Ok(())
    }

    /// Registers a new object instance of `class` owned by `lp`.
    ///
    /// # Errors
    ///
    /// Returns an error if the LP does not publish `class`.
    pub fn register_object_instance(
        &mut self,
        lp: LpId,
        class: ObjectClassId,
    ) -> Result<ObjectId, CbError> {
        self.check_lp(lp)?;
        self.check_object_class(class)?;
        if !self.publications.publishes(lp, class) {
            return Err(CbError::NotPublished { class });
        }
        let id = ObjectId::compose(self.addr.node.0, self.next_object_seq);
        self.next_object_seq += 1;
        self.objects.insert(id, (lp, class));
        Ok(id)
    }

    // ------------------------------------------------------------------
    // Data plane: push and pull
    // ------------------------------------------------------------------

    /// *Update Attribute Values*: the publisher pushes new state for `object`.
    ///
    /// The update is routed immediately to co-resident subscribers and queued
    /// for transmission over every established virtual channel whose publisher
    /// is `lp`; remote datagrams leave on the next [`CbKernel::tick`].
    ///
    /// # Errors
    ///
    /// Returns an error if the LP is unknown, the object is unknown, or the
    /// object is not owned by `lp`'s published class.
    pub fn update_attribute_values(
        &mut self,
        lp: LpId,
        object: ObjectId,
        values: AttributeValues,
        timestamp: Micros,
    ) -> Result<(), CbError> {
        self.check_lp(lp)?;
        let (owner, class) = *self.objects.get(&object).ok_or(CbError::UnknownObject(object.0))?;
        if owner != lp {
            return Err(CbError::NotPublished { class });
        }
        self.stats.updates_published += 1;

        // Local routing: co-resident subscribers get the reflection without
        // touching the network (paper §2.1: "no matter that the corresponded
        // LP is in the same machine or across network").
        let local_subscribers: Vec<LpId> =
            self.subscriptions.subscribers_of(class).into_iter().filter(|s| *s != lp).collect();
        for sub in local_subscribers {
            if let Some(entry) = self.lps.get_mut(&sub) {
                entry.reflections.push_back(Reflection {
                    object,
                    class,
                    values: values.clone(),
                    timestamp,
                    channel: None,
                });
                self.stats.updates_routed_locally += 1;
                self.stats.reflections_delivered += 1;
            }
        }

        // Remote routing: push over every established outgoing channel.
        let outgoing: Vec<(ChannelId, Addr)> =
            self.channels.outgoing(lp, class).into_iter().map(|c| (c.id, c.remote_cb)).collect();
        for (channel, remote) in outgoing {
            self.outbox.push((
                Destination::Unicast(remote),
                WireMessage::UpdateAttributes {
                    channel,
                    object,
                    class,
                    timestamp,
                    values: values.clone(),
                },
            ));
            self.stats.updates_sent_remote += 1;
        }
        Ok(())
    }

    /// Sends an interaction: delivered to co-resident subscribers immediately
    /// and broadcast to every other CB on the next tick.
    ///
    /// # Errors
    ///
    /// Returns an error if the LP or the interaction class is unknown.
    pub fn send_interaction(
        &mut self,
        lp: LpId,
        class: InteractionClassId,
        parameters: AttributeValues,
        timestamp: Micros,
    ) -> Result<(), CbError> {
        self.check_lp(lp)?;
        if !self.fom.contains_interaction_class(class) {
            return Err(CbError::UnknownInteractionClass(class));
        }
        self.stats.interactions_sent += 1;
        let message =
            InteractionMessage { class, sender: lp, parameters: parameters.clone(), timestamp };
        for (id, entry) in self.lps.iter_mut() {
            if *id != lp && entry.interaction_subscriptions.contains(&class) {
                entry.interactions.push_back(message.clone());
                self.stats.interactions_delivered += 1;
            }
        }
        self.outbox.push((
            Destination::Broadcast(self.addr.port),
            WireMessage::Interaction { class, sender_lp: lp, timestamp, parameters },
        ));
        Ok(())
    }

    /// *Reflect Attribute Values* (pull side): drains the reflections queued for `lp`.
    pub fn reflections(&mut self, lp: LpId) -> Vec<Reflection> {
        match self.lps.get_mut(&lp) {
            Some(entry) => entry.reflections.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Drains the interactions queued for `lp`.
    pub fn interactions(&mut self, lp: LpId) -> Vec<InteractionMessage> {
        match self.lps.get_mut(&lp) {
            Some(entry) => entry.interactions.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Sends a Chandy–Misra null message on every established outgoing channel
    /// of `lp`, promising that no update earlier than `lower_bound` will follow.
    ///
    /// # Errors
    ///
    /// Returns an error if the LP is unknown.
    pub fn send_null_messages(&mut self, lp: LpId, lower_bound: Micros) -> Result<(), CbError> {
        self.check_lp(lp)?;
        let targets: Vec<(ChannelId, Addr)> = self
            .channels
            .iter()
            .filter(|c| c.established && c.role == ChannelRole::Publisher && c.publisher_lp == lp)
            .map(|c| (c.id, c.remote_cb))
            .collect();
        for (channel, remote) in targets {
            self.outbox.push((
                Destination::Unicast(remote),
                WireMessage::NullMessage { channel, time: lower_bound },
            ));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // The kernel pump
    // ------------------------------------------------------------------

    /// Advances the kernel to simulation time `now`: receives and processes
    /// wire messages, runs the initialization-protocol timers, and flushes
    /// queued outgoing messages onto the transport.
    ///
    /// # Errors
    ///
    /// Returns an error if the transport fails. Malformed datagrams are counted
    /// in the statistics but do not abort the tick.
    pub fn tick(&mut self, now: Micros) -> Result<(), CbError> {
        self.now = now;

        // 1. Receive.
        let datagrams = self.transport.poll()?;
        for dgram in datagrams {
            match WireMessage::decode(&dgram.payload) {
                Ok(msg) => {
                    self.stats.wire_messages_received += 1;
                    self.handle_wire_message(msg, dgram.src);
                }
                Err(_) => {
                    self.stats.decode_errors += 1;
                }
            }
        }

        // 2. Initialization-protocol timers: broadcast due subscriptions.
        let interval = self.config.subscription_broadcast_interval;
        let readvertise = self.config.readvertise_interval;
        let cb_addr = self.addr;
        let mut broadcasts = Vec::new();
        for pending in self.pending.iter_mut() {
            // A co-resident publisher already serves the subscription; keep the
            // broadcast only at the slow re-advertisement pace so late remote
            // publishers can still be discovered.
            pending.locally_matched =
                self.publications.publishers_of(pending.class).iter().any(|p| *p != pending.lp);
            if pending.broadcast_due(now, interval, readvertise) {
                pending.record_broadcast(now);
                broadcasts.push(WireMessage::Subscription {
                    subscriber_cb: cb_addr,
                    subscriber_lp: pending.lp,
                    class: pending.class,
                });
            }
        }
        for msg in broadcasts {
            self.stats.subscription_broadcasts += 1;
            self.outbox.push((Destination::Broadcast(self.addr.port), msg));
        }

        // 2b. Retransmit CHANNEL CONNECTION for half-open subscriber-side
        // channels (the LAN may have lost either the connection request or the
        // confirming acknowledgement).
        let mut retries = Vec::new();
        for vc in self.channels.iter() {
            if vc.role != ChannelRole::Subscriber || vc.established {
                continue;
            }
            let last = self.connect_last_sent.get(&vc.id).copied().unwrap_or(Micros::ZERO);
            if now.saturating_sub(last) >= interval {
                retries.push((
                    vc.remote_cb,
                    WireMessage::ChannelConnection {
                        channel: vc.id,
                        subscriber_cb: cb_addr,
                        subscriber_lp: vc.subscriber_lp,
                        publisher_lp: vc.publisher_lp,
                        class: vc.class,
                    },
                ));
            }
        }
        for (remote, msg) in retries {
            if let WireMessage::ChannelConnection { channel, .. } = &msg {
                self.connect_last_sent.insert(*channel, now);
            }
            self.outbox.push((Destination::Unicast(remote), msg));
        }

        // 3. Flush.
        let outbox = std::mem::take(&mut self.outbox);
        for (dst, msg) in outbox {
            self.transport.send(dst, &msg.encode())?;
        }
        Ok(())
    }

    fn handle_wire_message(&mut self, msg: WireMessage, _from: Addr) {
        match msg {
            WireMessage::Subscription { subscriber_cb, subscriber_lp, class } => {
                if subscriber_cb == self.addr {
                    return;
                }
                let publishers = self.publications.publishers_of(class);
                for publisher_lp in publishers {
                    if self.channels.has_equivalent(publisher_lp, subscriber_lp, class) {
                        continue;
                    }
                    self.stats.acknowledges_sent += 1;
                    self.outbox.push((
                        Destination::Unicast(subscriber_cb),
                        WireMessage::Acknowledge { publisher_cb: self.addr, publisher_lp, class },
                    ));
                }
            }
            WireMessage::Acknowledge { publisher_cb, publisher_lp, class } => {
                let node = self.addr.node.0;
                let mut new_channels = Vec::new();
                for pending in self.pending.iter_mut() {
                    if pending.class != class {
                        continue;
                    }
                    if self.channels.has_equivalent(publisher_lp, pending.lp, class) {
                        continue;
                    }
                    let channel = ChannelId::compose(node, self.next_channel_seq);
                    self.next_channel_seq += 1;
                    pending.record_connecting(channel);
                    new_channels.push(VirtualChannel {
                        id: channel,
                        class,
                        publisher_lp,
                        subscriber_lp: pending.lp,
                        remote_cb: publisher_cb,
                        role: ChannelRole::Subscriber,
                        established: false,
                    });
                }
                for vc in new_channels {
                    self.outbox.push((
                        Destination::Unicast(publisher_cb),
                        WireMessage::ChannelConnection {
                            channel: vc.id,
                            subscriber_cb: self.addr,
                            subscriber_lp: vc.subscriber_lp,
                            publisher_lp: vc.publisher_lp,
                            class: vc.class,
                        },
                    ));
                    self.connect_last_sent.insert(vc.id, self.now);
                    self.channels.insert(vc);
                }
            }
            WireMessage::ChannelConnection {
                channel,
                subscriber_cb,
                subscriber_lp,
                publisher_lp,
                class,
            } => {
                if !self.publications.publishes(publisher_lp, class) {
                    return;
                }
                // Idempotent: a retransmitted CHANNEL CONNECTION (lost ack)
                // only re-sends the acknowledgement.
                if self.channels.get(channel).is_none() {
                    self.channels.insert(VirtualChannel {
                        id: channel,
                        class,
                        publisher_lp,
                        subscriber_lp,
                        remote_cb: subscriber_cb,
                        role: ChannelRole::Publisher,
                        established: true,
                    });
                    self.stats.channels_established += 1;
                }
                self.outbox.push((
                    Destination::Unicast(subscriber_cb),
                    WireMessage::ChannelAck { channel },
                ));
            }
            WireMessage::ChannelAck { channel } => {
                self.connect_last_sent.remove(&channel);
                if let Some(vc) = self.channels.get_mut(channel) {
                    if !vc.established {
                        vc.established = true;
                        self.stats.channels_established += 1;
                    }
                }
                let now = self.now;
                for pending in self.pending.iter_mut() {
                    if pending.channels.contains_key(&channel) {
                        if let Some(latency) = pending.record_established(channel, now) {
                            self.stats.setup_latencies.push(latency);
                        }
                    }
                }
            }
            WireMessage::UpdateAttributes { channel, object, class, timestamp, values } => {
                let bound = self.channel_time_bounds.entry(channel).or_insert(Micros::ZERO);
                if timestamp > *bound {
                    *bound = timestamp;
                }
                let subscriber = match self.channels.get(channel) {
                    Some(vc) if vc.role == ChannelRole::Subscriber => vc.subscriber_lp,
                    _ => return,
                };
                if let Some(entry) = self.lps.get_mut(&subscriber) {
                    entry.reflections.push_back(Reflection {
                        object,
                        class,
                        values,
                        timestamp,
                        channel: Some(channel),
                    });
                    self.stats.reflections_delivered += 1;
                }
            }
            WireMessage::Interaction { class, sender_lp, timestamp, parameters } => {
                let message =
                    InteractionMessage { class, sender: sender_lp, parameters, timestamp };
                for entry in self.lps.values_mut() {
                    if entry.interaction_subscriptions.contains(&class) {
                        entry.interactions.push_back(message.clone());
                        self.stats.interactions_delivered += 1;
                    }
                }
            }
            WireMessage::NullMessage { channel, time } => {
                let bound = self.channel_time_bounds.entry(channel).or_insert(Micros::ZERO);
                if time > *bound {
                    *bound = time;
                }
            }
            WireMessage::Withdraw { lp } => {
                self.channels.remove_for_lp(lp);
            }
        }
    }

    fn check_lp(&self, lp: LpId) -> Result<(), CbError> {
        if self.lps.contains_key(&lp) {
            Ok(())
        } else {
            Err(CbError::UnknownLp(lp.0))
        }
    }

    fn check_object_class(&self, class: ObjectClassId) -> Result<(), CbError> {
        if self.fom.contains_object_class(class) {
            Ok(())
        } else {
            Err(CbError::UnknownObjectClass(class))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fom::Value;
    use cod_net::{LanConfig, SharedLan, SimLan, SimTransport};

    struct Cluster {
        lan: SharedLan,
        now: Micros,
    }

    impl Cluster {
        fn new(seed: u64) -> Cluster {
            Cluster { lan: SimLan::shared(LanConfig::fast_ethernet(seed)), now: Micros::ZERO }
        }

        fn kernel(&self, name: &str, fom: &ClassRegistry) -> CbKernel<SimTransport> {
            CbKernel::new(SimLan::attach(&self.lan, name), fom.clone())
        }

        /// Runs `steps` rounds of 10 ms, ticking every kernel each round.
        fn run(&mut self, kernels: &mut [&mut CbKernel<SimTransport>], steps: usize) {
            for _ in 0..steps {
                for k in kernels.iter_mut() {
                    k.tick(self.now).unwrap();
                }
                self.now += Micros::from_millis(10);
                SimLan::advance_to(&self.lan, self.now);
            }
        }
    }

    fn crane_fom() -> (ClassRegistry, ObjectClassId, InteractionClassId) {
        let mut fom = ClassRegistry::new();
        let crane = fom
            .register_object_class("CraneState", &["position", "boom_angle", "cable_length"])
            .unwrap();
        let collision = fom.register_interaction_class("Collision", &["location"]).unwrap();
        (fom, crane, collision)
    }

    #[test]
    fn channel_established_between_two_computers() {
        let (fom, crane, _) = crane_fom();
        let mut cluster = Cluster::new(1);
        let mut publisher = cluster.kernel("dynamics-pc", &fom);
        let mut subscriber = cluster.kernel("visual-pc", &fom);

        let dynamics = publisher.register_lp("dynamics");
        let visual = subscriber.register_lp("visual");
        publisher.publish_object_class(dynamics, crane).unwrap();
        subscriber.subscribe_object_class(visual, crane).unwrap();

        cluster.run(&mut [&mut publisher, &mut subscriber], 20);

        assert_eq!(publisher.established_channel_count(), 1);
        assert_eq!(subscriber.established_channel_count(), 1);
        assert_eq!(subscriber.stats().setup_latencies.len(), 1);
        assert!(publisher.stats().acknowledges_sent >= 1);
        assert_eq!(subscriber.incoming_channels(visual).len(), 1);
    }

    #[test]
    fn update_flows_from_publisher_to_remote_subscriber() {
        let (fom, crane, _) = crane_fom();
        let mut cluster = Cluster::new(2);
        let mut publisher = cluster.kernel("dynamics-pc", &fom);
        let mut subscriber = cluster.kernel("visual-pc", &fom);
        let dynamics = publisher.register_lp("dynamics");
        let visual = subscriber.register_lp("visual");
        publisher.publish_object_class(dynamics, crane).unwrap();
        subscriber.subscribe_object_class(visual, crane).unwrap();
        cluster.run(&mut [&mut publisher, &mut subscriber], 20);

        let object = publisher.register_object_instance(dynamics, crane).unwrap();
        let angle = fom.attribute_id(crane, "boom_angle").unwrap();
        publisher
            .update_attribute_values(
                dynamics,
                object,
                [(angle, Value::F64(0.7))].into(),
                cluster.now,
            )
            .unwrap();
        cluster.run(&mut [&mut publisher, &mut subscriber], 5);

        let reflections = subscriber.reflections(visual);
        assert_eq!(reflections.len(), 1);
        assert_eq!(reflections[0].object, object);
        assert_eq!(reflections[0].values[&angle], Value::F64(0.7));
        assert!(reflections[0].channel.is_some());
        assert_eq!(publisher.stats().updates_sent_remote, 1);
        assert_eq!(publisher.stats().updates_routed_locally, 0);
    }

    #[test]
    fn co_resident_lps_are_routed_locally_without_network() {
        let (fom, crane, _) = crane_fom();
        let cluster = Cluster::new(3);
        let mut kernel = cluster.kernel("single-pc", &fom);
        let dynamics = kernel.register_lp("dynamics");
        let visual = kernel.register_lp("visual");
        kernel.publish_object_class(dynamics, crane).unwrap();
        kernel.subscribe_object_class(visual, crane).unwrap();

        let object = kernel.register_object_instance(dynamics, crane).unwrap();
        let angle = fom.attribute_id(crane, "boom_angle").unwrap();
        kernel
            .update_attribute_values(dynamics, object, [(angle, Value::F64(1.5))].into(), Micros(5))
            .unwrap();

        let reflections = kernel.reflections(visual);
        assert_eq!(reflections.len(), 1);
        assert!(reflections[0].channel.is_none());
        assert_eq!(kernel.stats().updates_routed_locally, 1);
        assert_eq!(kernel.stats().updates_sent_remote, 0);
        assert!((kernel.stats().local_routing_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dynamic_join_of_an_extra_display_without_restart() {
        let (fom, crane, _) = crane_fom();
        let mut cluster = Cluster::new(4);
        let mut publisher = cluster.kernel("dynamics-pc", &fom);
        let mut display1 = cluster.kernel("display-1", &fom);
        let dynamics = publisher.register_lp("dynamics");
        let d1 = display1.register_lp("display-1");
        publisher.publish_object_class(dynamics, crane).unwrap();
        display1.subscribe_object_class(d1, crane).unwrap();
        cluster.run(&mut [&mut publisher, &mut display1], 20);
        assert_eq!(publisher.established_channel_count(), 1);

        // A new display computer joins the running system (paper §2.3).
        let mut display2 = cluster.kernel("display-2", &fom);
        let d2 = display2.register_lp("display-2");
        display2.subscribe_object_class(d2, crane).unwrap();
        cluster.run(&mut [&mut publisher, &mut display1, &mut display2], 30);
        assert_eq!(publisher.established_channel_count(), 2);

        let object = publisher.register_object_instance(dynamics, crane).unwrap();
        let angle = fom.attribute_id(crane, "boom_angle").unwrap();
        publisher
            .update_attribute_values(
                dynamics,
                object,
                [(angle, Value::F64(0.2))].into(),
                cluster.now,
            )
            .unwrap();
        cluster.run(&mut [&mut publisher, &mut display1, &mut display2], 5);
        assert_eq!(display1.reflections(d1).len(), 1);
        assert_eq!(display2.reflections(d2).len(), 1);
    }

    #[test]
    fn interactions_are_broadcast_to_subscribed_lps_everywhere() {
        let (fom, crane, collision) = crane_fom();
        let mut cluster = Cluster::new(5);
        let mut a = cluster.kernel("dynamics-pc", &fom);
        let mut b = cluster.kernel("audio-pc", &fom);
        let dynamics = a.register_lp("dynamics");
        let local_audio = a.register_lp("local-audio");
        let audio = b.register_lp("audio");
        a.publish_object_class(dynamics, crane).unwrap();
        a.subscribe_interaction_class(local_audio, collision).unwrap();
        b.subscribe_interaction_class(audio, collision).unwrap();
        cluster.run(&mut [&mut a, &mut b], 5);

        let location = fom.parameter_id(collision, "location").unwrap();
        a.send_interaction(
            dynamics,
            collision,
            [(location, Value::Vec3([1.0, 0.0, 2.0]))].into(),
            cluster.now,
        )
        .unwrap();
        cluster.run(&mut [&mut a, &mut b], 5);

        assert_eq!(a.interactions(local_audio).len(), 1);
        let remote = b.interactions(audio);
        assert_eq!(remote.len(), 1);
        assert_eq!(remote[0].sender, dynamics);
        // The sender itself does not receive its own interaction.
        assert!(a.interactions(dynamics).is_empty());
    }

    #[test]
    fn service_calls_validate_their_arguments() {
        let (fom, crane, collision) = crane_fom();
        let cluster = Cluster::new(6);
        let mut kernel = cluster.kernel("pc", &fom);
        let lp = kernel.register_lp("lp");
        let ghost = LpId(0xdead_beef);

        assert!(matches!(kernel.publish_object_class(ghost, crane), Err(CbError::UnknownLp(_))));
        assert!(matches!(
            kernel.publish_object_class(lp, ObjectClassId(42)),
            Err(CbError::UnknownObjectClass(_))
        ));
        assert!(matches!(
            kernel.register_object_instance(lp, crane),
            Err(CbError::NotPublished { .. })
        ));
        assert!(matches!(
            kernel.subscribe_interaction_class(lp, InteractionClassId(9)),
            Err(CbError::UnknownInteractionClass(_))
        ));
        kernel.publish_object_class(lp, crane).unwrap();
        let object = kernel.register_object_instance(lp, crane).unwrap();
        let other = kernel.register_lp("other");
        assert!(matches!(
            kernel.update_attribute_values(other, object, AttributeValues::new(), Micros::ZERO),
            Err(CbError::NotPublished { .. })
        ));
        assert!(matches!(
            kernel.send_interaction(ghost, collision, AttributeValues::new(), Micros::ZERO),
            Err(CbError::UnknownLp(_))
        ));
    }

    #[test]
    fn withdraw_tears_down_remote_channels() {
        let (fom, crane, _) = crane_fom();
        let mut cluster = Cluster::new(7);
        let mut publisher = cluster.kernel("dynamics-pc", &fom);
        let mut subscriber = cluster.kernel("visual-pc", &fom);
        let dynamics = publisher.register_lp("dynamics");
        let visual = subscriber.register_lp("visual");
        publisher.publish_object_class(dynamics, crane).unwrap();
        subscriber.subscribe_object_class(visual, crane).unwrap();
        cluster.run(&mut [&mut publisher, &mut subscriber], 20);
        assert_eq!(publisher.established_channel_count(), 1);

        subscriber.deregister_lp(visual).unwrap();
        cluster.run(&mut [&mut publisher, &mut subscriber], 5);
        assert_eq!(publisher.established_channel_count(), 0);
        assert_eq!(subscriber.established_channel_count(), 0);
    }

    #[test]
    fn null_messages_advance_channel_time_bounds() {
        let (fom, crane, _) = crane_fom();
        let mut cluster = Cluster::new(8);
        let mut publisher = cluster.kernel("dynamics-pc", &fom);
        let mut subscriber = cluster.kernel("visual-pc", &fom);
        let dynamics = publisher.register_lp("dynamics");
        let visual = subscriber.register_lp("visual");
        publisher.publish_object_class(dynamics, crane).unwrap();
        subscriber.subscribe_object_class(visual, crane).unwrap();
        cluster.run(&mut [&mut publisher, &mut subscriber], 20);

        publisher.send_null_messages(dynamics, Micros(500_000)).unwrap();
        cluster.run(&mut [&mut publisher, &mut subscriber], 5);
        let channel = subscriber.incoming_channels(visual)[0];
        assert_eq!(subscriber.channel_time_bound(channel), Some(Micros(500_000)));
    }

    #[test]
    fn lossy_lan_still_converges_thanks_to_rebroadcast() {
        let (fom, crane, _) = crane_fom();
        let lan = SimLan::shared(LanConfig::fast_ethernet(11).with_loss(0.3));
        let mut cluster = Cluster { lan, now: Micros::ZERO };
        let mut publisher = cluster.kernel("dynamics-pc", &fom);
        let mut subscriber = cluster.kernel("visual-pc", &fom);
        let dynamics = publisher.register_lp("dynamics");
        let visual = subscriber.register_lp("visual");
        publisher.publish_object_class(dynamics, crane).unwrap();
        subscriber.subscribe_object_class(visual, crane).unwrap();
        // Lossy network: allow plenty of protocol rounds.
        cluster.run(&mut [&mut publisher, &mut subscriber], 300);
        assert!(
            subscriber.established_channel_count() >= 1,
            "channel never established over lossy LAN"
        );
    }
}
