//! Publication and Subscription tables.
//!
//! When an LP registers to its resident CB as a publisher or subscriber, the CB
//! records the LP's information in its Publication table or Subscription table
//! respectively (paper §2.2). During initialization, matched entries are linked
//! by a virtual channel.

use crate::fom::ObjectClassId;
use crate::kernel::LpId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One row of the publication table: a local LP publishes an object class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PublicationEntry {
    /// The publishing LP (always local to this CB).
    pub lp: LpId,
    /// The published object class.
    pub class: ObjectClassId,
}

/// One row of the subscription table: a local LP subscribes to an object class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SubscriptionEntry {
    /// The subscribing LP (always local to this CB).
    pub lp: LpId,
    /// The subscribed object class.
    pub class: ObjectClassId,
}

/// The publication table of one CB.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicationTable {
    entries: BTreeSet<PublicationEntry>,
}

impl PublicationTable {
    /// Creates an empty table.
    pub fn new() -> PublicationTable {
        PublicationTable::default()
    }

    /// Records that `lp` publishes `class`. Returns `false` if already recorded.
    pub fn insert(&mut self, lp: LpId, class: ObjectClassId) -> bool {
        self.entries.insert(PublicationEntry { lp, class })
    }

    /// Removes every entry of `lp`, returning how many were removed.
    pub fn remove_lp(&mut self, lp: LpId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.lp != lp);
        before - self.entries.len()
    }

    /// Whether `lp` publishes `class`.
    pub fn publishes(&self, lp: LpId, class: ObjectClassId) -> bool {
        self.entries.contains(&PublicationEntry { lp, class })
    }

    /// Every local LP that publishes `class`.
    pub fn publishers_of(&self, class: ObjectClassId) -> Vec<LpId> {
        self.entries.iter().filter(|e| e.class == class).map(|e| e.lp).collect()
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = &PublicationEntry> {
        self.entries.iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The subscription table of one CB.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubscriptionTable {
    entries: BTreeSet<SubscriptionEntry>,
}

impl SubscriptionTable {
    /// Creates an empty table.
    pub fn new() -> SubscriptionTable {
        SubscriptionTable::default()
    }

    /// Records that `lp` subscribes to `class`. Returns `false` if already recorded.
    pub fn insert(&mut self, lp: LpId, class: ObjectClassId) -> bool {
        self.entries.insert(SubscriptionEntry { lp, class })
    }

    /// Removes every entry of `lp`, returning how many were removed.
    pub fn remove_lp(&mut self, lp: LpId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.lp != lp);
        before - self.entries.len()
    }

    /// Whether `lp` subscribes to `class`.
    pub fn subscribes(&self, lp: LpId, class: ObjectClassId) -> bool {
        self.entries.contains(&SubscriptionEntry { lp, class })
    }

    /// Every local LP subscribed to `class`.
    pub fn subscribers_of(&self, class: ObjectClassId) -> Vec<LpId> {
        self.entries.iter().filter(|e| e.class == class).map(|e| e.lp).collect()
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = &SubscriptionEntry> {
        self.entries.iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publication_table_dedup_and_lookup() {
        let mut t = PublicationTable::new();
        assert!(t.insert(LpId(1), ObjectClassId(0)));
        assert!(!t.insert(LpId(1), ObjectClassId(0)));
        assert!(t.insert(LpId(2), ObjectClassId(0)));
        assert!(t.insert(LpId(1), ObjectClassId(1)));
        assert!(t.publishes(LpId(1), ObjectClassId(0)));
        assert!(!t.publishes(LpId(2), ObjectClassId(1)));
        let mut pubs = t.publishers_of(ObjectClassId(0));
        pubs.sort();
        assert_eq!(pubs, vec![LpId(1), LpId(2)]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn subscription_table_remove_lp() {
        let mut t = SubscriptionTable::new();
        t.insert(LpId(1), ObjectClassId(0));
        t.insert(LpId(1), ObjectClassId(1));
        t.insert(LpId(2), ObjectClassId(0));
        assert_eq!(t.remove_lp(LpId(1)), 2);
        assert_eq!(t.len(), 1);
        assert!(t.subscribes(LpId(2), ObjectClassId(0)));
        assert_eq!(t.subscribers_of(ObjectClassId(1)), Vec::<LpId>::new());
    }
}
