//! Error type for the Communication Backbone.

use crate::fom::{InteractionClassId, ObjectClassId};
use cod_net::NetError;
use std::fmt;

/// Errors produced by Communication Backbone services.
#[derive(Debug)]
#[non_exhaustive]
pub enum CbError {
    /// The referenced logical process is not registered with this CB.
    UnknownLp(u64),
    /// The referenced object class does not exist in the FOM.
    UnknownObjectClass(ObjectClassId),
    /// The referenced interaction class does not exist in the FOM.
    UnknownInteractionClass(InteractionClassId),
    /// The referenced object instance is not registered.
    UnknownObject(u64),
    /// The LP tried to update an object of a class it does not publish.
    NotPublished {
        /// The offending class.
        class: ObjectClassId,
    },
    /// A class or attribute name was registered twice in the FOM.
    DuplicateName(String),
    /// A wire message could not be decoded.
    Codec(String),
    /// The underlying transport failed.
    Net(NetError),
}

impl fmt::Display for CbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CbError::UnknownLp(id) => write!(f, "unknown logical process {id}"),
            CbError::UnknownObjectClass(c) => write!(f, "unknown object class {}", c.0),
            CbError::UnknownInteractionClass(c) => write!(f, "unknown interaction class {}", c.0),
            CbError::UnknownObject(o) => write!(f, "unknown object instance {o}"),
            CbError::NotPublished { class } => {
                write!(f, "object class {} is not published by this logical process", class.0)
            }
            CbError::DuplicateName(n) => {
                write!(f, "duplicate name in federation object model: {n}")
            }
            CbError::Codec(msg) => write!(f, "wire message decode failed: {msg}"),
            CbError::Net(e) => write!(f, "network transport error: {e}"),
        }
    }
}

impl std::error::Error for CbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CbError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for CbError {
    fn from(e: NetError) -> Self {
        CbError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_well_behaved() {
        fn assert_traits<E: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<CbError>();
    }

    #[test]
    fn net_error_is_wrapped_with_source() {
        let e = CbError::from(NetError::Disconnected);
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("transport"));
    }
}
