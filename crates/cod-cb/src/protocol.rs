//! Initialization-protocol state tracked by the subscribing CB.
//!
//! Paper §2.3: a subscribing CB broadcasts its SUBSCRIPTION message at a
//! constant interval until an ACKNOWLEDGE arrives; it then sends a CHANNEL
//! CONNECTION message to the acknowledging CB and waits for the confirming
//! acknowledgement of the established channel. Because publishers may come and
//! go, the broadcast continues (at a slower "re-advertise" pace) even after the
//! first channel is built, which is what lets an extra display be plugged into
//! the running system.

use crate::channel::ChannelId;
use crate::fom::ObjectClassId;
use crate::kernel::LpId;
use cod_net::Micros;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Setup progress of one subscriber-side channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelSetupState {
    /// CHANNEL CONNECTION sent, waiting for the publisher's channel acknowledgement.
    Connecting,
    /// The channel is established and carrying data.
    Established,
}

/// Subscriber-side bookkeeping for one (LP, class) subscription.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingSubscription {
    /// The subscribing local LP.
    pub lp: LpId,
    /// The subscribed object class.
    pub class: ObjectClassId,
    /// Simulation time at which the subscription was issued.
    pub issued_at: Micros,
    /// Time of the most recent SUBSCRIPTION broadcast.
    pub last_broadcast: Option<Micros>,
    /// Number of broadcasts sent so far.
    pub broadcasts_sent: u32,
    /// Per-channel setup progress for channels this subscription initiated,
    /// keyed by channel id (there is one channel per matched remote publisher).
    pub channels: BTreeMap<ChannelId, ChannelSetupState>,
    /// Time at which the first channel became established, if any.
    pub first_established_at: Option<Micros>,
    /// Whether a co-resident publisher already satisfies this subscription, in
    /// which case the broadcast only continues at the re-advertisement pace.
    pub locally_matched: bool,
}

impl PendingSubscription {
    /// Creates the bookkeeping for a fresh subscription.
    pub fn new(lp: LpId, class: ObjectClassId, issued_at: Micros) -> PendingSubscription {
        PendingSubscription {
            lp,
            class,
            issued_at,
            last_broadcast: None,
            broadcasts_sent: 0,
            channels: BTreeMap::new(),
            first_established_at: None,
            locally_matched: false,
        }
    }

    /// Whether the subscription is already being served, either by an
    /// established virtual channel or by a co-resident publisher.
    pub fn is_satisfied(&self) -> bool {
        self.locally_matched || self.channels.values().any(|s| *s == ChannelSetupState::Established)
    }

    /// Whether a SUBSCRIPTION broadcast is due at `now`.
    ///
    /// Before the first channel is established the broadcast repeats every
    /// `interval`; afterwards it repeats every `readvertise_interval` so that
    /// late-joining publishers can still be discovered.
    pub fn broadcast_due(
        &self,
        now: Micros,
        interval: Micros,
        readvertise_interval: Micros,
    ) -> bool {
        let period = if self.is_satisfied() { readvertise_interval } else { interval };
        match self.last_broadcast {
            None => true,
            Some(last) => now.saturating_sub(last) >= period,
        }
    }

    /// Normalizes the broadcast timers to the session epoch so a recycled
    /// kernel re-advertises on the same schedule as a freshly initialized one.
    /// Channel setup progress is kept — established channels survive a session
    /// reset.
    pub fn begin_session(&mut self, epoch: Micros) {
        self.issued_at = epoch;
        self.last_broadcast = Some(epoch);
        self.broadcasts_sent = 0;
    }

    /// Records that a broadcast was sent at `now`.
    pub fn record_broadcast(&mut self, now: Micros) {
        self.last_broadcast = Some(now);
        self.broadcasts_sent += 1;
    }

    /// Records that a CHANNEL CONNECTION was sent for `channel`.
    pub fn record_connecting(&mut self, channel: ChannelId) {
        self.channels.entry(channel).or_insert(ChannelSetupState::Connecting);
    }

    /// Records that `channel` is now established; returns the setup latency if
    /// this is the first established channel.
    pub fn record_established(&mut self, channel: ChannelId, now: Micros) -> Option<Micros> {
        self.channels.insert(channel, ChannelSetupState::Established);
        if self.first_established_at.is_none() {
            self.first_established_at = Some(now);
            Some(now.saturating_sub(self.issued_at))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INTERVAL: Micros = Micros(100_000);
    const READVERT: Micros = Micros(1_000_000);

    #[test]
    fn broadcast_schedule_follows_interval() {
        let mut p = PendingSubscription::new(LpId(1), ObjectClassId(0), Micros::ZERO);
        assert!(p.broadcast_due(Micros::ZERO, INTERVAL, READVERT));
        p.record_broadcast(Micros::ZERO);
        assert!(!p.broadcast_due(Micros(50_000), INTERVAL, READVERT));
        assert!(p.broadcast_due(Micros(100_000), INTERVAL, READVERT));
    }

    #[test]
    fn established_channel_slows_broadcast_to_readvertise_pace() {
        let mut p = PendingSubscription::new(LpId(1), ObjectClassId(0), Micros::ZERO);
        p.record_broadcast(Micros::ZERO);
        p.record_connecting(ChannelId(5));
        let latency = p.record_established(ChannelId(5), Micros(42_000));
        assert_eq!(latency, Some(Micros(42_000)));
        assert!(p.is_satisfied());
        assert!(!p.broadcast_due(Micros(200_000), INTERVAL, READVERT));
        assert!(p.broadcast_due(Micros(1_000_000), INTERVAL, READVERT));
    }

    #[test]
    fn only_first_establishment_reports_latency() {
        let mut p = PendingSubscription::new(LpId(1), ObjectClassId(0), Micros(10));
        p.record_connecting(ChannelId(1));
        p.record_connecting(ChannelId(2));
        assert!(p.record_established(ChannelId(1), Micros(20)).is_some());
        assert!(p.record_established(ChannelId(2), Micros(30)).is_none());
        assert_eq!(p.channels.len(), 2);
    }
}
