//! Virtual channels: the pipelines that interconnect Logical Processes.
//!
//! Physically a virtual channel is "an entry mapping between CBs" (paper §2.2,
//! Figure 2): once a publisher is matched with a subscriber during
//! initialization, the publication-table entry on the publishing side is linked
//! to the subscription-table entry on the subscribing side. The data plane then
//! pushes updates along the channel and the subscriber pulls them at its own pace.

use crate::fom::ObjectClassId;
use crate::kernel::LpId;
use cod_net::Addr;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifies a virtual channel cluster-wide.
///
/// Channel ids are allocated by the subscribing CB: the high 32 bits are its
/// node id, the low 32 bits a local counter, so ids never collide between CBs.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ChannelId(pub u64);

impl ChannelId {
    /// Composes a channel id from the allocating node and a local sequence number.
    pub fn compose(node: u16, seq: u32) -> ChannelId {
        ChannelId(((node as u64) << 32) | seq as u64)
    }

    /// The node that allocated this channel id.
    pub fn node(self) -> u16 {
        (self.0 >> 32) as u16
    }
}

/// The role a CB plays on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelRole {
    /// This CB hosts the publishing LP and pushes updates into the channel.
    Publisher,
    /// This CB hosts the subscribing LP and delivers reflections out of the channel.
    Subscriber,
}

/// One established (or half-established) virtual channel as seen by one CB.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualChannel {
    /// The channel id.
    pub id: ChannelId,
    /// Object class carried by the channel.
    pub class: ObjectClassId,
    /// The publishing LP.
    pub publisher_lp: LpId,
    /// The subscribing LP.
    pub subscriber_lp: LpId,
    /// Address of the CB on the other end of the channel.
    pub remote_cb: Addr,
    /// Role this CB plays.
    pub role: ChannelRole,
    /// Whether the connection handshake has completed.
    pub established: bool,
}

/// All channels known to one CB, indexed by id.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelTable {
    channels: BTreeMap<ChannelId, VirtualChannel>,
}

impl ChannelTable {
    /// Creates an empty table.
    pub fn new() -> ChannelTable {
        ChannelTable::default()
    }

    /// Inserts or replaces a channel entry.
    pub fn insert(&mut self, channel: VirtualChannel) {
        self.channels.insert(channel.id, channel);
    }

    /// Looks up a channel by id.
    pub fn get(&self, id: ChannelId) -> Option<&VirtualChannel> {
        self.channels.get(&id)
    }

    /// Mutable lookup by id.
    pub fn get_mut(&mut self, id: ChannelId) -> Option<&mut VirtualChannel> {
        self.channels.get_mut(&id)
    }

    /// Removes a channel.
    pub fn remove(&mut self, id: ChannelId) -> Option<VirtualChannel> {
        self.channels.remove(&id)
    }

    /// Removes every channel whose publisher or subscriber is `lp`, returning them.
    pub fn remove_for_lp(&mut self, lp: LpId) -> Vec<VirtualChannel> {
        let doomed: Vec<ChannelId> = self
            .channels
            .values()
            .filter(|c| c.publisher_lp == lp || c.subscriber_lp == lp)
            .map(|c| c.id)
            .collect();
        doomed.into_iter().filter_map(|id| self.channels.remove(&id)).collect()
    }

    /// Iterates over all channels.
    pub fn iter(&self) -> impl Iterator<Item = &VirtualChannel> {
        self.channels.values()
    }

    /// Established channels where the given local LP is the publisher of `class`.
    pub fn outgoing(&self, publisher_lp: LpId, class: ObjectClassId) -> Vec<&VirtualChannel> {
        self.channels
            .values()
            .filter(|c| {
                c.established
                    && c.role == ChannelRole::Publisher
                    && c.publisher_lp == publisher_lp
                    && c.class == class
            })
            .collect()
    }

    /// Whether an equivalent publisher-side channel already exists (same
    /// subscriber LP, publisher LP and class).
    pub fn has_equivalent(
        &self,
        publisher_lp: LpId,
        subscriber_lp: LpId,
        class: ObjectClassId,
    ) -> bool {
        self.channels.values().any(|c| {
            c.publisher_lp == publisher_lp && c.subscriber_lp == subscriber_lp && c.class == class
        })
    }

    /// Number of channels in the table.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Number of fully established channels.
    pub fn established_count(&self) -> usize {
        self.channels.values().filter(|c| c.established).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cod_net::{NodeId, Port};

    fn channel(
        id: u64,
        publisher: u64,
        subscriber: u64,
        class: u16,
        established: bool,
    ) -> VirtualChannel {
        VirtualChannel {
            id: ChannelId(id),
            class: ObjectClassId(class),
            publisher_lp: LpId(publisher),
            subscriber_lp: LpId(subscriber),
            remote_cb: Addr::new(NodeId(1), Port(1)),
            role: ChannelRole::Publisher,
            established,
        }
    }

    #[test]
    fn compose_packs_node_and_sequence() {
        let id = ChannelId::compose(3, 17);
        assert_eq!(id.node(), 3);
        assert_eq!(id.0 & 0xffff_ffff, 17);
    }

    #[test]
    fn outgoing_filters_by_publisher_class_and_establishment() {
        let mut t = ChannelTable::new();
        t.insert(channel(1, 10, 20, 0, true));
        t.insert(channel(2, 10, 21, 0, false));
        t.insert(channel(3, 10, 22, 1, true));
        t.insert(channel(4, 11, 20, 0, true));
        let out = t.outgoing(LpId(10), ObjectClassId(0));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, ChannelId(1));
        assert_eq!(t.established_count(), 3);
    }

    #[test]
    fn remove_for_lp_tears_down_both_directions() {
        let mut t = ChannelTable::new();
        t.insert(channel(1, 10, 20, 0, true));
        t.insert(channel(2, 30, 10, 0, true));
        t.insert(channel(3, 40, 50, 0, true));
        let removed = t.remove_for_lp(LpId(10));
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn has_equivalent_detects_duplicates() {
        let mut t = ChannelTable::new();
        t.insert(channel(1, 10, 20, 5, false));
        assert!(t.has_equivalent(LpId(10), LpId(20), ObjectClassId(5)));
        assert!(!t.has_equivalent(LpId(10), LpId(21), ObjectClassId(5)));
    }
}
