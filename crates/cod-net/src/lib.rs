//! Network substrate for the Cluster Of Desktop computers (COD).
//!
//! The original system (Huang et al., ICDCS 2001) ran its Communication
//! Backbone over a 100 Mbit Ethernet LAN connecting eight desktop PCs. This
//! crate provides the equivalent substrate in three interchangeable flavours,
//! all implementing the [`Transport`] trait the CB is written against:
//!
//! * [`SimLan`] / [`SimTransport`] — a deterministic discrete-event LAN model
//!   with configurable latency, jitter, bandwidth and loss. All protocol tests
//!   and benches run on this, so results are reproducible.
//! * [`LoopbackHub`] / [`LoopbackTransport`] — zero-latency in-process channels
//!   (crossbeam) for threaded, real-time examples.
//! * [`UdpTransport`] — real UDP datagrams on the local host, demonstrating
//!   that the same CB code runs over genuine sockets.
//!
//! # Example
//!
//! ```
//! use cod_net::{LanConfig, SimLan, Transport, Destination, Port};
//!
//! let lan = SimLan::shared(LanConfig::fast_ethernet(42));
//! let mut a = SimLan::attach(&lan, "display-1");
//! let mut b = SimLan::attach(&lan, "dynamics");
//!
//! // Endpoints created by `attach` listen on the default CB port, `Port(1)`.
//! a.send(Destination::Broadcast(Port(1)), b"hello cluster").unwrap();
//! SimLan::advance(&lan, cod_net::Micros::from_millis(10));
//! let received = b.poll().unwrap();
//! assert_eq!(received.len(), 1);
//! assert_eq!(&received[0].payload[..], b"hello cluster");
//! ```

pub mod addr;
pub mod datagram;
pub mod error;
pub mod fault;
pub mod link;
pub mod loopback;
pub mod plans;
pub mod simnet;
pub mod stats;
pub mod time;
pub mod transport;
pub mod udp;

pub use addr::{Addr, NodeId, Port};
pub use datagram::{Datagram, Destination};
pub use error::NetError;
pub use fault::{FaultPlan, LatencySpike, LinkFaultRule, PartitionWindow};
pub use link::{LanConfig, LinkModel};
pub use loopback::{LoopbackHub, LoopbackTransport};
pub use plans::NamedPlan;
pub use simnet::{SharedLan, SimLan, SimTransport};
pub use stats::{LanStats, NodeStats};
pub use time::{Micros, SimClock};
pub use transport::Transport;
pub use udp::{UdpPeerTable, UdpTransport};
