//! Deterministic discrete-event simulation of the cluster LAN.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::addr::{Addr, NodeId, Port};
use crate::datagram::{Datagram, Destination};
use crate::error::NetError;
use crate::fault::FaultPlan;
use crate::link::LanConfig;
use crate::stats::LanStats;
use crate::time::{Micros, SimClock};
use crate::transport::Transport;

/// Default service port assigned to endpoints created with [`SimLan::attach`].
pub const DEFAULT_PORT: Port = Port(1);

/// A LAN shared between transports; clone the `Arc` freely.
pub type SharedLan = Arc<Mutex<SimLan>>;

#[derive(Debug, Clone, PartialEq, Eq)]
struct ScheduledDelivery {
    at: Micros,
    seq: u64,
    to: Addr,
    dgram: Datagram,
}

impl Ord for ScheduledDelivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for ScheduledDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event model of the cluster's local area network.
///
/// Datagrams sent through attached [`SimTransport`]s are scheduled for delivery
/// according to the configured [`LanConfig`] (latency, jitter, serialization
/// delay, loss) and appear in receiver inboxes once the LAN clock is advanced
/// past their delivery time.
#[derive(Debug)]
pub struct SimLan {
    config: LanConfig,
    clock: SimClock,
    rng: StdRng,
    faults: FaultPlan,
    fault_rng: StdRng,
    next_seq: u64,
    next_node: u16,
    queue: BinaryHeap<Reverse<ScheduledDelivery>>,
    inboxes: BTreeMap<Addr, VecDeque<Datagram>>,
    node_names: BTreeMap<NodeId, String>,
    stats: LanStats,
}

impl SimLan {
    /// Creates a LAN with the given configuration.
    pub fn new(config: LanConfig) -> SimLan {
        SimLan {
            config,
            clock: SimClock::new(),
            rng: StdRng::seed_from_u64(config.seed),
            faults: FaultPlan::none(),
            fault_rng: StdRng::seed_from_u64(0),
            next_seq: 0,
            next_node: 0,
            queue: BinaryHeap::new(),
            inboxes: BTreeMap::new(),
            node_names: BTreeMap::new(),
            stats: LanStats::default(),
        }
    }

    /// Creates a LAN wrapped for sharing between transports.
    pub fn shared(config: LanConfig) -> SharedLan {
        Arc::new(Mutex::new(SimLan::new(config)))
    }

    /// Attaches a new computer (node) to the LAN and returns a transport bound
    /// to its default CB port.
    pub fn attach(lan: &SharedLan, name: &str) -> SimTransport {
        let addr = {
            let mut l = lan.lock();
            let node = NodeId(l.next_node);
            l.next_node += 1;
            l.node_names.insert(node, name.to_owned());
            let addr = Addr::new(node, DEFAULT_PORT);
            l.inboxes.insert(addr, VecDeque::new());
            addr
        };
        SimTransport { lan: Arc::clone(lan), addr }
    }

    /// Attaches an additional endpoint (port) on an existing node.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint already exists.
    pub fn attach_port(lan: &SharedLan, node: NodeId, port: Port) -> SimTransport {
        let addr = Addr::new(node, port);
        {
            let mut l = lan.lock();
            assert!(!l.inboxes.contains_key(&addr), "endpoint {addr} already attached");
            l.inboxes.insert(addr, VecDeque::new());
        }
        SimTransport { lan: Arc::clone(lan), addr }
    }

    /// Advances the LAN clock by `dt`, performing any deliveries that fall due.
    pub fn advance(lan: &SharedLan, dt: Micros) {
        let mut l = lan.lock();
        let target = l.clock.now() + dt;
        l.advance_to_inner(target);
    }

    /// Advances the LAN clock to the absolute time `t`.
    pub fn advance_to(lan: &SharedLan, t: Micros) {
        lan.lock().advance_to_inner(t);
    }

    /// Runs the LAN until no scheduled deliveries remain, returning the final time.
    pub fn run_until_idle(lan: &SharedLan) -> Micros {
        let mut l = lan.lock();
        while let Some(Reverse(next)) = l.queue.peek().cloned() {
            l.advance_to_inner(next.at);
        }
        l.clock.now()
    }

    /// Current LAN time.
    pub fn now(lan: &SharedLan) -> Micros {
        lan.lock().clock.now()
    }

    /// Snapshot of the traffic counters.
    pub fn stats(lan: &SharedLan) -> LanStats {
        lan.lock().stats.clone()
    }

    /// Rewinds the LAN to a canonical session start: the clock is reset to
    /// `epoch`, in-flight and undelivered datagrams are discarded, the jitter
    /// RNG is reseeded from `seed`, any fault plan is removed and the traffic
    /// counters are zeroed. The attached endpoints (nodes, ports, names) are
    /// kept.
    ///
    /// Called once at the end of cluster initialization *and* on every session
    /// reset, so a recycled cluster and a freshly built one start each session
    /// from bit-identical LAN state.
    pub fn begin_session(lan: &SharedLan, epoch: Micros, seed: u64) {
        let mut l = lan.lock();
        l.clock.reset_to(epoch);
        l.rng = StdRng::seed_from_u64(seed);
        l.faults = FaultPlan::none();
        l.fault_rng = StdRng::seed_from_u64(0);
        l.next_seq = 0;
        l.queue.clear();
        for inbox in l.inboxes.values_mut() {
            inbox.clear();
        }
        l.stats = LanStats::default();
    }

    /// Installs a fault-injection plan; faults are drawn from a dedicated RNG
    /// stream seeded from [`FaultPlan::seed`], so the same plan and seed
    /// reproduce the same fault schedule bit for bit.
    pub fn set_fault_plan(lan: &SharedLan, plan: FaultPlan) {
        let mut l = lan.lock();
        l.fault_rng = StdRng::seed_from_u64(plan.seed);
        l.faults = plan;
    }

    /// The currently installed fault plan.
    pub fn fault_plan(lan: &SharedLan) -> FaultPlan {
        lan.lock().faults.clone()
    }

    /// Human-readable name of a node, if any.
    pub fn node_name(lan: &SharedLan, node: NodeId) -> Option<String> {
        lan.lock().node_names.get(&node).cloned()
    }

    /// Number of endpoints attached to the LAN.
    pub fn endpoint_count(lan: &SharedLan) -> usize {
        lan.lock().inboxes.len()
    }

    fn advance_to_inner(&mut self, t: Micros) {
        while let Some(Reverse(next)) = self.queue.peek() {
            if next.at > t {
                break;
            }
            let Reverse(delivery) = self.queue.pop().expect("peeked entry present");
            let mut dgram = delivery.dgram;
            dgram.delivered_at = delivery.at;
            let bytes = dgram.payload.len();
            if let Some(inbox) = self.inboxes.get_mut(&delivery.to) {
                inbox.push_back(dgram);
                self.stats.record_delivery(delivery.to.node, bytes);
            }
        }
        self.clock.advance_to(t);
    }

    fn send_from(&mut self, src: Addr, dst: Destination, payload: &[u8]) -> Result<(), NetError> {
        if payload.len() > self.config.mtu {
            return Err(NetError::PayloadTooLarge { size: payload.len(), max: self.config.mtu });
        }
        let payload = Bytes::copy_from_slice(payload);
        let targets: Vec<Addr> = match dst {
            Destination::Unicast(addr) => {
                if !self.inboxes.contains_key(&addr) {
                    return Err(NetError::UnknownEndpoint(addr));
                }
                vec![addr]
            }
            Destination::Broadcast(port) => {
                self.inboxes.keys().copied().filter(|a| a.port == port && *a != src).collect()
            }
        };
        self.stats.record_send(src.node, payload.len());
        let now = self.clock.now();
        let inject = !self.faults.is_none();
        for to in targets {
            let dgram = Datagram { src, dst, payload: payload.clone(), delivered_at: Micros::ZERO };
            if inject && self.faults.partitioned(now, src.node, to.node) {
                self.stats.record_partition_drop();
                continue;
            }
            // Fault decisions are drawn *before* the link-loss draw so the
            // fault stream consumes its RNG identically whether or not the
            // link model itself is lossy.
            let (fault_dropped, reordered, duplicated) = if inject {
                let rule = self.faults.rule_for(src.node, to.node);
                let dropped = rule.drop_probability > 0.0
                    && self.fault_rng.gen_bool(rule.drop_probability.clamp(0.0, 1.0));
                let reordered = rule.reorder_probability > 0.0
                    && self.fault_rng.gen_bool(rule.reorder_probability.clamp(0.0, 1.0));
                let duplicated = rule.duplicate_probability > 0.0
                    && self.fault_rng.gen_bool(rule.duplicate_probability.clamp(0.0, 1.0));
                (dropped, reordered, duplicated)
            } else {
                (false, false, false)
            };
            if fault_dropped {
                self.stats.record_fault_drop();
                continue;
            }
            if self.config.link.sample_loss(&mut self.rng) {
                self.stats.record_drop();
                continue;
            }
            let mut delay = self.config.link.sample_delay(&dgram, &mut self.rng);
            if inject {
                delay += Micros(self.faults.spike_extra_us(now));
                if reordered {
                    // Hold the datagram back so later traffic overtakes it.
                    delay += Micros(self.faults.rule_for(src.node, to.node).reorder_delay_us);
                    self.stats.record_fault_reorder();
                }
                if duplicated {
                    let extra = self.config.link.sample_delay(&dgram, &mut self.fault_rng)
                        + Micros(self.faults.spike_extra_us(now));
                    self.stats.record_fault_duplicate();
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.queue.push(Reverse(ScheduledDelivery {
                        at: now + extra,
                        seq,
                        to,
                        dgram: dgram.clone(),
                    }));
                }
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            self.queue.push(Reverse(ScheduledDelivery { at: now + delay, seq, to, dgram }));
        }
        Ok(())
    }

    fn poll_endpoint(&mut self, addr: Addr) -> Result<Vec<Datagram>, NetError> {
        match self.inboxes.get_mut(&addr) {
            None => Err(NetError::UnknownEndpoint(addr)),
            Some(inbox) => Ok(inbox.drain(..).collect()),
        }
    }
}

/// A transport endpoint attached to a [`SimLan`].
#[derive(Debug, Clone)]
pub struct SimTransport {
    lan: SharedLan,
    addr: Addr,
}

impl SimTransport {
    /// The shared LAN this transport is attached to.
    pub fn lan(&self) -> &SharedLan {
        &self.lan
    }
}

impl Transport for SimTransport {
    fn send(&mut self, dst: Destination, payload: &[u8]) -> Result<(), NetError> {
        self.lan.lock().send_from(self.addr, dst, payload)
    }

    fn poll(&mut self) -> Result<Vec<Datagram>, NetError> {
        self.lan.lock().poll_endpoint(self.addr)
    }

    fn local_addr(&self) -> Addr {
        self.addr
    }

    fn mtu(&self) -> usize {
        self.lan.lock().config.mtu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lan_pair(config: LanConfig) -> (SharedLan, SimTransport, SimTransport) {
        let lan = SimLan::shared(config);
        let a = SimLan::attach(&lan, "a");
        let b = SimLan::attach(&lan, "b");
        (lan, a, b)
    }

    #[test]
    fn unicast_delivery_after_advance() {
        let (lan, mut a, mut b) = lan_pair(LanConfig::fast_ethernet(1));
        a.send(Destination::Unicast(b.local_addr()), b"ping").unwrap();
        assert!(b.poll().unwrap().is_empty(), "nothing delivered before time advances");
        SimLan::advance(&lan, Micros::from_millis(5));
        let got = b.poll().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].payload[..], b"ping");
        assert_eq!(got[0].src, a.local_addr());
    }

    #[test]
    fn broadcast_excludes_sender() {
        let lan = SimLan::shared(LanConfig::fast_ethernet(3));
        let mut a = SimLan::attach(&lan, "a");
        let mut b = SimLan::attach(&lan, "b");
        let mut c = SimLan::attach(&lan, "c");
        a.send(Destination::Broadcast(DEFAULT_PORT), b"hello").unwrap();
        SimLan::run_until_idle(&lan);
        assert_eq!(a.poll().unwrap().len(), 0);
        assert_eq!(b.poll().unwrap().len(), 1);
        assert_eq!(c.poll().unwrap().len(), 1);
    }

    #[test]
    fn unknown_unicast_destination_is_an_error() {
        let (_lan, mut a, _b) = lan_pair(LanConfig::fast_ethernet(1));
        let bogus = Addr::new(NodeId(77), Port(9));
        let err = a.send(Destination::Unicast(bogus), b"x").unwrap_err();
        assert!(matches!(err, NetError::UnknownEndpoint(_)));
    }

    #[test]
    fn oversized_payload_rejected() {
        let (_lan, mut a, b) = lan_pair(LanConfig::fast_ethernet(1));
        let big = vec![0u8; 70_000];
        let err = a.send(Destination::Unicast(b.local_addr()), &big).unwrap_err();
        assert!(matches!(err, NetError::PayloadTooLarge { .. }));
    }

    #[test]
    fn delivery_order_preserved_for_same_path() {
        // With zero jitter the FIFO order of equal-size datagrams must hold.
        let config = LanConfig {
            link: crate::link::LinkModel {
                jitter_us: 0,
                ..crate::link::LinkModel::fast_ethernet()
            },
            seed: 5,
            mtu: 65_507,
        };
        let (lan, mut a, mut b) = lan_pair(config);
        for i in 0u8..10 {
            a.send(Destination::Unicast(b.local_addr()), &[i]).unwrap();
        }
        SimLan::run_until_idle(&lan);
        let got = b.poll().unwrap();
        let order: Vec<u8> = got.iter().map(|d| d.payload[0]).collect();
        assert_eq!(order, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn deterministic_given_same_seed() {
        let run = |seed| {
            let (lan, mut a, mut b) = lan_pair(LanConfig::fast_ethernet(seed));
            for i in 0u8..50 {
                a.send(Destination::Unicast(b.local_addr()), &[i]).unwrap();
            }
            SimLan::run_until_idle(&lan);
            b.poll().unwrap().iter().map(|d| (d.delivered_at, d.payload[0])).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn lossy_lan_drops_some_datagrams() {
        let config = LanConfig::fast_ethernet(11).with_loss(0.5);
        let (lan, mut a, mut b) = lan_pair(config);
        for _ in 0..200 {
            a.send(Destination::Unicast(b.local_addr()), b"d").unwrap();
        }
        SimLan::run_until_idle(&lan);
        let delivered = b.poll().unwrap().len();
        assert!(delivered < 160 && delivered > 40, "delivered = {delivered}");
        let stats = SimLan::stats(&lan);
        assert_eq!(stats.datagrams_dropped + delivered as u64, 200);
    }

    #[test]
    fn stats_track_bytes() {
        let (lan, mut a, mut b) = lan_pair(LanConfig::fast_ethernet(1));
        a.send(Destination::Unicast(b.local_addr()), &[0u8; 128]).unwrap();
        SimLan::run_until_idle(&lan);
        b.poll().unwrap();
        let stats = SimLan::stats(&lan);
        assert_eq!(stats.bytes_sent, 128);
        assert_eq!(stats.per_node[&b.local_addr().node].bytes_received, 128);
    }

    #[test]
    fn attach_port_creates_second_endpoint_on_same_node() {
        let lan = SimLan::shared(LanConfig::fast_ethernet(1));
        let a = SimLan::attach(&lan, "a");
        let mut extra = SimLan::attach_port(&lan, a.local_addr().node, Port(9));
        let mut b = SimLan::attach(&lan, "b");
        b.send(Destination::Unicast(extra.local_addr()), b"to-port-9").unwrap();
        SimLan::run_until_idle(&lan);
        assert_eq!(extra.poll().unwrap().len(), 1);
        assert_eq!(SimLan::endpoint_count(&lan), 3);
    }

    #[test]
    fn node_names_are_recorded() {
        let lan = SimLan::shared(LanConfig::fast_ethernet(1));
        let a = SimLan::attach(&lan, "display-left");
        assert_eq!(SimLan::node_name(&lan, a.local_addr().node).unwrap(), "display-left");
    }

    #[test]
    fn fault_plan_drops_are_counted_separately_from_link_loss() {
        let (lan, mut a, mut b) = lan_pair(LanConfig::fast_ethernet(1));
        SimLan::set_fault_plan(&lan, FaultPlan::seeded(3).with_drop_probability(0.5));
        for _ in 0..200 {
            a.send(Destination::Unicast(b.local_addr()), b"d").unwrap();
        }
        SimLan::run_until_idle(&lan);
        let delivered = b.poll().unwrap().len();
        let stats = SimLan::stats(&lan);
        assert!(stats.fault_drops > 40 && stats.fault_drops < 160, "{}", stats.fault_drops);
        assert_eq!(stats.fault_drops, stats.datagrams_dropped, "link itself is lossless");
        assert_eq!(delivered as u64 + stats.fault_drops, 200);
    }

    #[test]
    fn fault_duplicates_deliver_extra_copies() {
        let (lan, mut a, mut b) = lan_pair(LanConfig::fast_ethernet(1));
        SimLan::set_fault_plan(&lan, FaultPlan::seeded(4).with_duplicate_probability(1.0));
        for _ in 0..10 {
            a.send(Destination::Unicast(b.local_addr()), b"d").unwrap();
        }
        SimLan::run_until_idle(&lan);
        assert_eq!(b.poll().unwrap().len(), 20);
        assert_eq!(SimLan::stats(&lan).fault_duplicates, 10);
    }

    #[test]
    fn reordering_lets_later_traffic_overtake() {
        let config = LanConfig {
            link: crate::link::LinkModel {
                jitter_us: 0,
                ..crate::link::LinkModel::fast_ethernet()
            },
            seed: 5,
            mtu: 65_507,
        };
        let (lan, mut a, mut b) = lan_pair(config);
        // Only the first datagram is reordered (held back 50 ms).
        SimLan::set_fault_plan(&lan, FaultPlan::seeded(6).with_reordering(1.0, 50_000));
        a.send(Destination::Unicast(b.local_addr()), &[0u8]).unwrap();
        SimLan::set_fault_plan(&lan, FaultPlan::none());
        a.send(Destination::Unicast(b.local_addr()), &[1u8]).unwrap();
        SimLan::run_until_idle(&lan);
        let order: Vec<u8> = b.poll().unwrap().iter().map(|d| d.payload[0]).collect();
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn partition_window_severs_and_heals() {
        let (lan, mut a, mut b) = lan_pair(LanConfig::fast_ethernet(1));
        let isolated = vec![b.local_addr().node];
        SimLan::set_fault_plan(
            &lan,
            FaultPlan::seeded(7).with_partition(Micros::ZERO, Micros::from_millis(100), isolated),
        );
        a.send(Destination::Unicast(b.local_addr()), b"lost").unwrap();
        SimLan::advance(&lan, Micros::from_millis(200));
        assert!(b.poll().unwrap().is_empty());
        assert_eq!(SimLan::stats(&lan).partition_drops, 1);
        // After the window closes traffic flows again.
        a.send(Destination::Unicast(b.local_addr()), b"heals").unwrap();
        SimLan::run_until_idle(&lan);
        assert_eq!(b.poll().unwrap().len(), 1);
    }

    #[test]
    fn latency_spike_delays_traffic_inside_the_window() {
        let config = LanConfig::ideal(1);
        let (lan, mut a, mut b) = lan_pair(config);
        SimLan::set_fault_plan(
            &lan,
            FaultPlan::seeded(8).with_spike(Micros::ZERO, Micros::from_millis(10), 5_000),
        );
        a.send(Destination::Unicast(b.local_addr()), b"slow").unwrap();
        SimLan::advance(&lan, Micros::from_millis(4));
        assert!(b.poll().unwrap().is_empty(), "spike must delay the ideal-link datagram");
        SimLan::advance(&lan, Micros::from_millis(2));
        assert_eq!(b.poll().unwrap().len(), 1);
    }

    #[test]
    fn fault_stream_is_deterministic_and_independent_of_link_jitter() {
        let run = |lan_seed| {
            let (lan, mut a, mut b) = lan_pair(LanConfig::fast_ethernet(lan_seed));
            SimLan::set_fault_plan(&lan, FaultPlan::seeded(99).with_drop_probability(0.3));
            for _ in 0..100 {
                a.send(Destination::Unicast(b.local_addr()), b"x").unwrap();
            }
            SimLan::run_until_idle(&lan);
            b.poll().unwrap().len()
        };
        // Same fault seed, different jitter seed: identical drop pattern (the
        // fault RNG never interleaves with the link RNG).
        assert_eq!(run(1), run(2));
    }

    #[test]
    fn fault_stream_is_independent_of_a_lossy_link_model() {
        // Fault decisions are drawn before the link's own loss draw, so even
        // on a lossy link model the fault schedule depends only on the fault
        // seed and the traffic sequence, not on the LAN seed.
        let run = |lan_seed| {
            let (lan, mut a, mut b) = lan_pair(LanConfig::legacy_ethernet(lan_seed).with_loss(0.2));
            SimLan::set_fault_plan(&lan, FaultPlan::seeded(99).with_drop_probability(0.3));
            for _ in 0..300 {
                a.send(Destination::Unicast(b.local_addr()), b"x").unwrap();
            }
            SimLan::run_until_idle(&lan);
            b.poll().unwrap();
            SimLan::stats(&lan)
        };
        let first = run(1);
        let second = run(2);
        assert_eq!(first.fault_drops, second.fault_drops);
        // The link's own losses do differ between the two seeds.
        assert_ne!(
            first.datagrams_dropped - first.fault_drops,
            second.datagrams_dropped - second.fault_drops
        );
    }
}
