//! Real UDP transport on the local host.
//!
//! The simulated LAN is used for all deterministic tests and benches; this
//! transport exists to demonstrate that the Communication Backbone runs
//! unchanged over genuine sockets, as it did on the original eight-PC rack.
//!
//! Because IP broadcast is unreliable inside containers and CI environments,
//! "broadcast" is implemented as iterated unicast over a peer table that every
//! node shares — functionally identical for a closed cluster whose membership
//! is known (the rack of Figure 11).

use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::addr::{Addr, NodeId, Port};
use crate::datagram::{Datagram, Destination};
use crate::error::NetError;
use crate::time::Micros;
use crate::transport::Transport;

/// Maximum UDP payload this transport accepts (classic safe maximum).
pub const UDP_MTU: usize = 65_000;

/// Shared table mapping cluster addresses to socket addresses.
#[derive(Debug, Clone, Default)]
pub struct UdpPeerTable {
    inner: Arc<RwLock<BTreeMap<Addr, SocketAddr>>>,
}

impl UdpPeerTable {
    /// Creates an empty peer table.
    pub fn new() -> UdpPeerTable {
        UdpPeerTable::default()
    }

    /// Registers (or replaces) the socket address for a cluster address.
    pub fn insert(&self, addr: Addr, sock: SocketAddr) {
        self.inner.write().insert(addr, sock);
    }

    /// Looks up the socket address of a cluster address.
    pub fn lookup(&self, addr: Addr) -> Option<SocketAddr> {
        self.inner.read().get(&addr).copied()
    }

    /// All peers listening on `port`, excluding `except`.
    pub fn peers_on_port(&self, port: Port, except: Addr) -> Vec<(Addr, SocketAddr)> {
        self.inner
            .read()
            .iter()
            .filter(|(a, _)| a.port == port && **a != except)
            .map(|(a, s)| (*a, *s))
            .collect()
    }

    /// Number of registered peers.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

/// A [`Transport`] backed by a non-blocking UDP socket on the local host.
#[derive(Debug)]
pub struct UdpTransport {
    socket: UdpSocket,
    addr: Addr,
    peers: UdpPeerTable,
}

impl UdpTransport {
    /// Binds a new UDP socket on `127.0.0.1` (ephemeral port), registers it in
    /// the peer table under `addr`, and returns the transport.
    ///
    /// # Errors
    ///
    /// Returns an error if the socket cannot be bound or configured.
    pub fn bind(addr: Addr, peers: UdpPeerTable) -> Result<UdpTransport, NetError> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_nonblocking(true)?;
        let local = socket.local_addr()?;
        peers.insert(addr, local);
        Ok(UdpTransport { socket, addr, peers })
    }

    /// The OS socket address this transport is bound to.
    ///
    /// # Errors
    ///
    /// Returns an error if the socket address cannot be queried.
    pub fn socket_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.socket.local_addr()?)
    }

    fn encode(&self, payload: &[u8]) -> Vec<u8> {
        // 4-byte header carrying the sender's cluster address.
        let mut buf = Vec::with_capacity(payload.len() + 4);
        buf.extend_from_slice(&self.addr.node.0.to_be_bytes());
        buf.extend_from_slice(&self.addr.port.0.to_be_bytes());
        buf.extend_from_slice(payload);
        buf
    }

    fn decode(buf: &[u8]) -> Option<(Addr, Bytes)> {
        if buf.len() < 4 {
            return None;
        }
        let node = NodeId(u16::from_be_bytes([buf[0], buf[1]]));
        let port = Port(u16::from_be_bytes([buf[2], buf[3]]));
        Some((Addr::new(node, port), Bytes::copy_from_slice(&buf[4..])))
    }
}

impl Transport for UdpTransport {
    fn send(&mut self, dst: Destination, payload: &[u8]) -> Result<(), NetError> {
        if payload.len() > UDP_MTU {
            return Err(NetError::PayloadTooLarge { size: payload.len(), max: UDP_MTU });
        }
        let frame = self.encode(payload);
        match dst {
            Destination::Unicast(to) => {
                let sock = self.peers.lookup(to).ok_or(NetError::UnknownEndpoint(to))?;
                self.socket.send_to(&frame, sock)?;
            }
            Destination::Broadcast(port) => {
                for (_, sock) in self.peers.peers_on_port(port, self.addr) {
                    self.socket.send_to(&frame, sock)?;
                }
            }
        }
        Ok(())
    }

    fn poll(&mut self) -> Result<Vec<Datagram>, NetError> {
        let mut out = Vec::new();
        let mut buf = [0u8; UDP_MTU + 4];
        loop {
            match self.socket.recv_from(&mut buf) {
                Ok((len, _from)) => {
                    if let Some((src, payload)) = Self::decode(&buf[..len]) {
                        out.push(Datagram {
                            src,
                            dst: Destination::Unicast(self.addr),
                            payload,
                            delivered_at: Micros::ZERO,
                        });
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => return Err(NetError::Io(e)),
            }
        }
        Ok(out)
    }

    fn local_addr(&self) -> Addr {
        self.addr
    }

    fn mtu(&self) -> usize {
        UDP_MTU
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn wait_for<T: Transport>(t: &mut T, n: usize) -> Vec<Datagram> {
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut got = Vec::new();
        while got.len() < n && Instant::now() < deadline {
            got.extend(t.poll().unwrap());
            std::thread::sleep(Duration::from_millis(1));
        }
        got
    }

    #[test]
    fn udp_unicast_roundtrip() {
        let peers = UdpPeerTable::new();
        let mut a = UdpTransport::bind(Addr::new(NodeId(0), Port(1)), peers.clone()).unwrap();
        let mut b = UdpTransport::bind(Addr::new(NodeId(1), Port(1)), peers.clone()).unwrap();
        a.send(Destination::Unicast(b.local_addr()), b"over real udp").unwrap();
        let got = wait_for(&mut b, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].payload[..], b"over real udp");
        assert_eq!(got[0].src, a.local_addr());
    }

    #[test]
    fn udp_broadcast_reaches_all_peers_on_port() {
        let peers = UdpPeerTable::new();
        let mut a = UdpTransport::bind(Addr::new(NodeId(0), Port(1)), peers.clone()).unwrap();
        let mut b = UdpTransport::bind(Addr::new(NodeId(1), Port(1)), peers.clone()).unwrap();
        let mut c = UdpTransport::bind(Addr::new(NodeId(2), Port(1)), peers.clone()).unwrap();
        let mut other_port =
            UdpTransport::bind(Addr::new(NodeId(3), Port(2)), peers.clone()).unwrap();

        a.send(Destination::Broadcast(Port(1)), b"bcast").unwrap();
        assert_eq!(wait_for(&mut b, 1).len(), 1);
        assert_eq!(wait_for(&mut c, 1).len(), 1);
        std::thread::sleep(Duration::from_millis(20));
        assert!(other_port.poll().unwrap().is_empty());
    }

    #[test]
    fn unknown_peer_is_error() {
        let peers = UdpPeerTable::new();
        let mut a = UdpTransport::bind(Addr::new(NodeId(0), Port(1)), peers).unwrap();
        let err = a.send(Destination::Unicast(Addr::new(NodeId(9), Port(1))), b"x").unwrap_err();
        assert!(matches!(err, NetError::UnknownEndpoint(_)));
    }

    #[test]
    fn oversized_payload_rejected() {
        let peers = UdpPeerTable::new();
        let mut a = UdpTransport::bind(Addr::new(NodeId(0), Port(1)), peers).unwrap();
        let err = a.send(Destination::Broadcast(Port(1)), &vec![0u8; UDP_MTU + 1]).unwrap_err();
        assert!(matches!(err, NetError::PayloadTooLarge { .. }));
    }
}
