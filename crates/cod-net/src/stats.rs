//! Traffic counters for the simulated LAN.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::addr::NodeId;

/// Per-node traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Datagrams sent by the node.
    pub datagrams_sent: u64,
    /// Datagrams delivered to the node.
    pub datagrams_received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
}

/// Whole-LAN traffic counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LanStats {
    /// Datagrams accepted by the LAN for delivery.
    pub datagrams_sent: u64,
    /// Datagram deliveries performed (a broadcast counts once per receiver).
    pub deliveries: u64,
    /// Datagrams dropped by the loss model.
    pub datagrams_dropped: u64,
    /// Total payload bytes accepted.
    pub bytes_sent: u64,
    /// Per-node breakdown.
    pub per_node: BTreeMap<NodeId, NodeStats>,
}

impl LanStats {
    /// Records a send of `bytes` payload bytes from `src`.
    pub fn record_send(&mut self, src: NodeId, bytes: usize) {
        self.datagrams_sent += 1;
        self.bytes_sent += bytes as u64;
        let n = self.per_node.entry(src).or_default();
        n.datagrams_sent += 1;
        n.bytes_sent += bytes as u64;
    }

    /// Records a delivery of `bytes` payload bytes to `dst`.
    pub fn record_delivery(&mut self, dst: NodeId, bytes: usize) {
        self.deliveries += 1;
        let n = self.per_node.entry(dst).or_default();
        n.datagrams_received += 1;
        n.bytes_received += bytes as u64;
    }

    /// Records a datagram dropped by the loss model.
    pub fn record_drop(&mut self) {
        self.datagrams_dropped += 1;
    }

    /// Fraction of accepted datagram deliveries that were dropped, in `[0, 1]`.
    pub fn drop_ratio(&self) -> f64 {
        let attempted = self.deliveries + self.datagrams_dropped;
        if attempted == 0 {
            0.0
        } else {
            self.datagrams_dropped as f64 / attempted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = LanStats::default();
        s.record_send(NodeId(1), 100);
        s.record_send(NodeId(1), 50);
        s.record_delivery(NodeId(2), 100);
        s.record_drop();
        assert_eq!(s.datagrams_sent, 2);
        assert_eq!(s.bytes_sent, 150);
        assert_eq!(s.per_node[&NodeId(1)].datagrams_sent, 2);
        assert_eq!(s.per_node[&NodeId(2)].bytes_received, 100);
        assert!((s.drop_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn drop_ratio_handles_empty() {
        assert_eq!(LanStats::default().drop_ratio(), 0.0);
    }
}
