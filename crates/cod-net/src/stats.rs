//! Traffic counters for the simulated LAN.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::addr::NodeId;

/// Per-node traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Datagrams sent by the node.
    pub datagrams_sent: u64,
    /// Datagrams delivered to the node.
    pub datagrams_received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
}

/// Whole-LAN traffic counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LanStats {
    /// Datagrams accepted by the LAN for delivery.
    pub datagrams_sent: u64,
    /// Datagram deliveries performed (a broadcast counts once per receiver).
    pub deliveries: u64,
    /// Datagrams dropped by the loss model (including fault-injected drops).
    pub datagrams_dropped: u64,
    /// Datagrams dropped by an injected [`crate::FaultPlan`] rule.
    pub fault_drops: u64,
    /// Extra copies scheduled by an injected duplication rule.
    pub fault_duplicates: u64,
    /// Datagrams held back by an injected reordering rule.
    pub fault_reorders: u64,
    /// Datagrams severed by an active partition window.
    pub partition_drops: u64,
    /// Total payload bytes accepted.
    pub bytes_sent: u64,
    /// Per-node breakdown.
    pub per_node: BTreeMap<NodeId, NodeStats>,
}

impl LanStats {
    /// Records a send of `bytes` payload bytes from `src`.
    pub fn record_send(&mut self, src: NodeId, bytes: usize) {
        self.datagrams_sent += 1;
        self.bytes_sent += bytes as u64;
        let n = self.per_node.entry(src).or_default();
        n.datagrams_sent += 1;
        n.bytes_sent += bytes as u64;
    }

    /// Records a delivery of `bytes` payload bytes to `dst`.
    pub fn record_delivery(&mut self, dst: NodeId, bytes: usize) {
        self.deliveries += 1;
        let n = self.per_node.entry(dst).or_default();
        n.datagrams_received += 1;
        n.bytes_received += bytes as u64;
    }

    /// Records a datagram dropped by the loss model.
    pub fn record_drop(&mut self) {
        self.datagrams_dropped += 1;
    }

    /// Records a datagram dropped by a fault-plan rule.
    pub fn record_fault_drop(&mut self) {
        self.datagrams_dropped += 1;
        self.fault_drops += 1;
    }

    /// Records an extra copy scheduled by a duplication rule.
    pub fn record_fault_duplicate(&mut self) {
        self.fault_duplicates += 1;
    }

    /// Records a datagram held back by a reordering rule.
    pub fn record_fault_reorder(&mut self) {
        self.fault_reorders += 1;
    }

    /// Records a datagram severed by a partition window.
    pub fn record_partition_drop(&mut self) {
        self.datagrams_dropped += 1;
        self.partition_drops += 1;
    }

    /// Fraction of accepted datagram deliveries that were dropped, in `[0, 1]`.
    pub fn drop_ratio(&self) -> f64 {
        let attempted = self.deliveries + self.datagrams_dropped;
        if attempted == 0 {
            0.0
        } else {
            self.datagrams_dropped as f64 / attempted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = LanStats::default();
        s.record_send(NodeId(1), 100);
        s.record_send(NodeId(1), 50);
        s.record_delivery(NodeId(2), 100);
        s.record_drop();
        assert_eq!(s.datagrams_sent, 2);
        assert_eq!(s.bytes_sent, 150);
        assert_eq!(s.per_node[&NodeId(1)].datagrams_sent, 2);
        assert_eq!(s.per_node[&NodeId(2)].bytes_received, 100);
        assert!((s.drop_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn drop_ratio_handles_empty() {
        assert_eq!(LanStats::default().drop_ratio(), 0.0);
    }

    #[test]
    fn fault_counters_feed_the_aggregate_drop_count() {
        let mut s = LanStats::default();
        s.record_fault_drop();
        s.record_partition_drop();
        s.record_drop();
        s.record_fault_duplicate();
        s.record_fault_reorder();
        assert_eq!(s.datagrams_dropped, 3, "fault and partition drops count as drops");
        assert_eq!(s.fault_drops, 1);
        assert_eq!(s.partition_drops, 1);
        assert_eq!(s.fault_duplicates, 1);
        assert_eq!(s.fault_reorders, 1);
    }

    mod monotonicity {
        use super::*;
        use proptest::prelude::*;

        fn apply(s: &mut LanStats, op: u8) {
            match op % 7 {
                0 => s.record_send(NodeId(op as u16 % 4), op as usize),
                1 => s.record_delivery(NodeId(op as u16 % 4), op as usize),
                2 => s.record_drop(),
                3 => s.record_fault_drop(),
                4 => s.record_fault_duplicate(),
                5 => s.record_fault_reorder(),
                _ => s.record_partition_drop(),
            }
        }

        fn totals(s: &LanStats) -> [u64; 8] {
            [
                s.datagrams_sent,
                s.deliveries,
                s.datagrams_dropped,
                s.fault_drops,
                s.fault_duplicates,
                s.fault_reorders,
                s.partition_drops,
                s.bytes_sent,
            ]
        }

        proptest! {
            #[test]
            fn prop_every_counter_is_monotone(ops in proptest::collection::vec(0u8..255, 1..200)) {
                let mut s = LanStats::default();
                let mut last = totals(&s);
                let mut last_nodes: std::collections::BTreeMap<NodeId, NodeStats> =
                    std::collections::BTreeMap::new();
                for op in ops {
                    apply(&mut s, op);
                    let now = totals(&s);
                    for (a, b) in last.iter().zip(&now) {
                        prop_assert!(b >= a, "aggregate counter regressed: {now:?} < {last:?}");
                    }
                    for (node, stats) in &s.per_node {
                        if let Some(before) = last_nodes.get(node) {
                            prop_assert!(stats.datagrams_sent >= before.datagrams_sent);
                            prop_assert!(stats.datagrams_received >= before.datagrams_received);
                            prop_assert!(stats.bytes_sent >= before.bytes_sent);
                            prop_assert!(stats.bytes_received >= before.bytes_received);
                        }
                    }
                    last = now;
                    last_nodes = s.per_node.clone();
                }
                // The ratio is always a valid fraction.
                prop_assert!((0.0..=1.0).contains(&s.drop_ratio()));
            }
        }
    }
}
