//! The transport abstraction the Communication Backbone is written against.

use crate::addr::Addr;
use crate::datagram::{Datagram, Destination};
use crate::error::NetError;

/// A datagram transport endpoint attached to the cluster network.
///
/// The Communication Backbone only ever needs three operations — send a
/// datagram (unicast or broadcast), poll for received datagrams, and learn its
/// own address — so the same CB code runs unchanged over the deterministic
/// simulated LAN, in-process loopback channels, or real UDP sockets.
pub trait Transport: Send {
    /// Sends `payload` to `dst`.
    ///
    /// # Errors
    ///
    /// Returns an error if the payload exceeds the transport MTU, the
    /// destination is unknown, or the underlying medium failed.
    fn send(&mut self, dst: Destination, payload: &[u8]) -> Result<(), NetError>;

    /// Drains every datagram that has been delivered to this endpoint since
    /// the previous call.
    ///
    /// # Errors
    ///
    /// Returns an error if the transport has been disconnected from its medium.
    fn poll(&mut self) -> Result<Vec<Datagram>, NetError>;

    /// The address of this endpoint on the cluster network.
    fn local_addr(&self) -> Addr;

    /// Maximum payload size in bytes accepted by [`Transport::send`].
    fn mtu(&self) -> usize {
        65_507
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_is_object_safe() {
        // Compile-time check: the CB stores transports as Box<dyn Transport>.
        fn _takes_boxed(_t: Box<dyn Transport>) {}
    }
}
