//! Zero-latency in-process transport built on crossbeam channels.
//!
//! Useful for the threaded, wall-clock examples where the modules of the crane
//! simulator run as real OS threads on one machine.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::addr::{Addr, NodeId, Port};
use crate::datagram::{Datagram, Destination};
use crate::error::NetError;
use crate::time::Micros;
use crate::transport::Transport;

#[derive(Debug, Default)]
struct HubInner {
    endpoints: BTreeMap<Addr, Sender<Datagram>>,
    next_node: u16,
}

/// A hub connecting [`LoopbackTransport`] endpoints with immediate delivery.
#[derive(Debug, Clone, Default)]
pub struct LoopbackHub {
    inner: Arc<Mutex<HubInner>>,
}

impl LoopbackHub {
    /// Creates an empty hub.
    pub fn new() -> LoopbackHub {
        LoopbackHub::default()
    }

    /// Attaches a new endpoint on a fresh node, bound to port 1.
    pub fn attach(&self) -> LoopbackTransport {
        let mut inner = self.inner.lock();
        let node = NodeId(inner.next_node);
        inner.next_node += 1;
        let addr = Addr::new(node, Port(1));
        let (tx, rx) = unbounded();
        inner.endpoints.insert(addr, tx);
        LoopbackTransport { hub: self.clone(), addr, rx }
    }

    /// Attaches an endpoint at an explicit address.
    ///
    /// # Panics
    ///
    /// Panics if the address is already in use.
    pub fn attach_addr(&self, addr: Addr) -> LoopbackTransport {
        let mut inner = self.inner.lock();
        assert!(!inner.endpoints.contains_key(&addr), "endpoint {addr} already attached");
        inner.next_node = inner.next_node.max(addr.node.0 + 1);
        let (tx, rx) = unbounded();
        inner.endpoints.insert(addr, tx);
        LoopbackTransport { hub: self.clone(), addr, rx }
    }

    /// Number of endpoints currently attached.
    pub fn endpoint_count(&self) -> usize {
        self.inner.lock().endpoints.len()
    }

    fn send_from(&self, src: Addr, dst: Destination, payload: &[u8]) -> Result<(), NetError> {
        let payload = Bytes::copy_from_slice(payload);
        let inner = self.inner.lock();
        let make = |_to: &Addr| Datagram {
            src,
            dst,
            payload: payload.clone(),
            delivered_at: Micros::ZERO,
        };
        match dst {
            Destination::Unicast(addr) => {
                let tx = inner.endpoints.get(&addr).ok_or(NetError::UnknownEndpoint(addr))?;
                tx.send(make(&addr)).map_err(|_| NetError::Disconnected)
            }
            Destination::Broadcast(port) => {
                for (addr, tx) in inner.endpoints.iter() {
                    if addr.port == port && *addr != src {
                        // A receiver that has been dropped is simply skipped,
                        // mirroring UDP broadcast semantics.
                        let _ = tx.send(make(addr));
                    }
                }
                Ok(())
            }
        }
    }

    fn detach(&self, addr: Addr) {
        self.inner.lock().endpoints.remove(&addr);
    }
}

/// A transport whose datagrams are delivered immediately through in-process channels.
#[derive(Debug)]
pub struct LoopbackTransport {
    hub: LoopbackHub,
    addr: Addr,
    rx: Receiver<Datagram>,
}

impl Transport for LoopbackTransport {
    fn send(&mut self, dst: Destination, payload: &[u8]) -> Result<(), NetError> {
        self.hub.send_from(self.addr, dst, payload)
    }

    fn poll(&mut self) -> Result<Vec<Datagram>, NetError> {
        Ok(self.rx.try_iter().collect())
    }

    fn local_addr(&self) -> Addr {
        self.addr
    }
}

impl Drop for LoopbackTransport {
    fn drop(&mut self) {
        self.hub.detach(self.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unicast_and_broadcast_deliver_immediately() {
        let hub = LoopbackHub::new();
        let mut a = hub.attach();
        let mut b = hub.attach();
        let mut c = hub.attach();

        a.send(Destination::Unicast(b.local_addr()), b"direct").unwrap();
        a.send(Destination::Broadcast(Port(1)), b"all").unwrap();

        let b_msgs = b.poll().unwrap();
        assert_eq!(b_msgs.len(), 2);
        let c_msgs = c.poll().unwrap();
        assert_eq!(c_msgs.len(), 1);
        assert_eq!(&c_msgs[0].payload[..], b"all");
        assert!(a.poll().unwrap().is_empty());
    }

    #[test]
    fn detach_on_drop() {
        let hub = LoopbackHub::new();
        let a = hub.attach();
        {
            let _b = hub.attach();
            assert_eq!(hub.endpoint_count(), 2);
        }
        assert_eq!(hub.endpoint_count(), 1);
        drop(a);
        assert_eq!(hub.endpoint_count(), 0);
    }

    #[test]
    fn unknown_unicast_is_error() {
        let hub = LoopbackHub::new();
        let mut a = hub.attach();
        let err = a.send(Destination::Unicast(Addr::new(NodeId(50), Port(1))), b"x").unwrap_err();
        assert!(matches!(err, NetError::UnknownEndpoint(_)));
    }

    #[test]
    fn works_across_threads() {
        let hub = LoopbackHub::new();
        let mut a = hub.attach();
        let mut b = hub.attach();
        let b_addr = b.local_addr();
        // Serving threads belong to the cod-fleet executor; this test only
        // proves the hub's mutex sharing across a second thread.
        // audit:allow(thread-spawn): test-only cross-thread smoke.
        let handle = std::thread::spawn(move || {
            a.send(Destination::Unicast(b_addr), b"threaded").unwrap();
        });
        handle.join().unwrap();
        let got = b.poll().unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn explicit_address_attach() {
        let hub = LoopbackHub::new();
        let addr = Addr::new(NodeId(7), Port(3));
        let t = hub.attach_addr(addr);
        assert_eq!(t.local_addr(), addr);
        // Next automatic attach must not collide with node 7.
        let auto = hub.attach();
        assert!(auto.local_addr().node.0 > 7);
    }
}
