//! Link model: how long a datagram takes to cross the LAN and whether it is lost.

use crate::datagram::Datagram;
use crate::time::Micros;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of a shared-medium LAN link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// One-way propagation plus protocol-stack latency in microseconds.
    pub base_latency_us: u64,
    /// Maximum additional random jitter in microseconds (uniform).
    pub jitter_us: u64,
    /// Link bandwidth in bits per second; determines serialization delay.
    pub bandwidth_bps: u64,
    /// Probability in `[0, 1]` that a datagram is silently dropped.
    pub loss_probability: f64,
}

impl LinkModel {
    /// A 100 Mbit switched Ethernet segment of the era described by the paper.
    pub fn fast_ethernet() -> LinkModel {
        LinkModel {
            base_latency_us: 120,
            jitter_us: 60,
            bandwidth_bps: 100_000_000,
            loss_probability: 0.0,
        }
    }

    /// A 10 Mbit shared Ethernet segment (the pessimistic variant).
    pub fn legacy_ethernet() -> LinkModel {
        LinkModel {
            base_latency_us: 400,
            jitter_us: 250,
            bandwidth_bps: 10_000_000,
            loss_probability: 0.001,
        }
    }

    /// An idealized zero-latency, lossless link (for isolating protocol costs).
    pub fn ideal() -> LinkModel {
        LinkModel {
            base_latency_us: 0,
            jitter_us: 0,
            bandwidth_bps: u64::MAX,
            loss_probability: 0.0,
        }
    }

    /// Serialization delay for a datagram of `bytes` bytes.
    pub fn serialization_delay(&self, bytes: usize) -> Micros {
        if self.bandwidth_bps == u64::MAX {
            return Micros::ZERO;
        }
        let bits = bytes as u64 * 8;
        Micros(bits * 1_000_000 / self.bandwidth_bps)
    }

    /// Draws the total one-way delay for a datagram using the supplied RNG.
    pub fn sample_delay<R: Rng>(&self, dgram: &Datagram, rng: &mut R) -> Micros {
        let jitter = if self.jitter_us == 0 { 0 } else { rng.gen_range(0..=self.jitter_us) };
        Micros(self.base_latency_us + jitter) + self.serialization_delay(dgram.wire_size())
    }

    /// Draws whether the datagram is lost.
    pub fn sample_loss<R: Rng>(&self, rng: &mut R) -> bool {
        self.loss_probability > 0.0 && rng.gen_bool(self.loss_probability.clamp(0.0, 1.0))
    }
}

/// Complete configuration for a simulated LAN.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LanConfig {
    /// The shared link model.
    pub link: LinkModel,
    /// Seed for the deterministic jitter / loss random stream.
    pub seed: u64,
    /// Maximum datagram payload accepted by the LAN.
    pub mtu: usize,
}

impl LanConfig {
    /// Fast-Ethernet LAN with a given RNG seed.
    pub fn fast_ethernet(seed: u64) -> LanConfig {
        LanConfig { link: LinkModel::fast_ethernet(), seed, mtu: 65_507 }
    }

    /// Legacy 10 Mbit LAN with a given RNG seed.
    pub fn legacy_ethernet(seed: u64) -> LanConfig {
        LanConfig { link: LinkModel::legacy_ethernet(), seed, mtu: 65_507 }
    }

    /// An ideal LAN (no latency, no loss), useful as an experimental control.
    pub fn ideal(seed: u64) -> LanConfig {
        LanConfig { link: LinkModel::ideal(), seed, mtu: 65_507 }
    }

    /// Returns a copy with the loss probability replaced.
    pub fn with_loss(mut self, p: f64) -> LanConfig {
        self.link.loss_probability = p;
        self
    }

    /// Returns a copy with the base latency replaced.
    pub fn with_latency_us(mut self, us: u64) -> LanConfig {
        self.link.base_latency_us = us;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Addr, NodeId, Port};
    use crate::datagram::Destination;
    use bytes::Bytes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dgram(payload_len: usize) -> Datagram {
        Datagram {
            src: Addr::new(NodeId(0), Port(1)),
            dst: Destination::Broadcast(Port(1)),
            payload: Bytes::from(vec![0u8; payload_len]),
            delivered_at: Micros::ZERO,
        }
    }

    #[test]
    fn serialization_delay_scales_with_size() {
        let link = LinkModel::fast_ethernet();
        let small = link.serialization_delay(100);
        let big = link.serialization_delay(10_000);
        assert!(big > small);
        // 10_000 bytes at 100 Mbit/s = 800 us.
        assert_eq!(link.serialization_delay(10_000), Micros(800));
    }

    #[test]
    fn ideal_link_has_zero_delay() {
        let link = LinkModel::ideal();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(link.sample_delay(&dgram(1000), &mut rng), Micros::ZERO);
        assert!(!link.sample_loss(&mut rng));
    }

    #[test]
    fn sampled_delay_within_bounds() {
        let link = LinkModel::fast_ethernet();
        let mut rng = StdRng::seed_from_u64(7);
        let d = dgram(458);
        for _ in 0..1000 {
            let delay = link.sample_delay(&d, &mut rng);
            let min = Micros(link.base_latency_us) + link.serialization_delay(d.wire_size());
            let max = Micros(link.base_latency_us + link.jitter_us)
                + link.serialization_delay(d.wire_size());
            assert!(delay >= min && delay <= max);
        }
    }

    #[test]
    fn loss_probability_respected_statistically() {
        let mut link = LinkModel::fast_ethernet();
        link.loss_probability = 0.25;
        let mut rng = StdRng::seed_from_u64(99);
        let losses = (0..10_000).filter(|_| link.sample_loss(&mut rng)).count();
        assert!((2_000..3_000).contains(&losses), "losses = {losses}");
    }

    #[test]
    fn config_builders() {
        let c = LanConfig::fast_ethernet(1).with_loss(0.5).with_latency_us(10);
        assert_eq!(c.link.loss_probability, 0.5);
        assert_eq!(c.link.base_latency_us, 10);
    }
}
