//! Datagrams exchanged on the cluster LAN.

use crate::addr::{Addr, Port};
use crate::time::Micros;
use bytes::Bytes;

/// Where a datagram is going.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Destination {
    /// Deliver to one specific endpoint.
    Unicast(Addr),
    /// Deliver to every node that has an endpoint listening on the port.
    ///
    /// The CB initialization protocol (paper §2.3) relies on periodic
    /// subscription broadcasts, so broadcast is a first-class operation.
    Broadcast(Port),
}

/// A single datagram as seen by a receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Sender endpoint.
    pub src: Addr,
    /// Destination the sender used (unicast address or broadcast port).
    pub dst: Destination,
    /// Payload bytes.
    pub payload: Bytes,
    /// Simulated time at which the datagram was delivered to the receiver
    /// (zero for transports without a simulated clock).
    pub delivered_at: Micros,
}

impl Datagram {
    /// Total size in bytes charged against the link (payload + UDP/IP-style header).
    pub fn wire_size(&self) -> usize {
        self.payload.len() + Self::HEADER_BYTES
    }

    /// Fixed per-datagram header overhead (Ethernet + IP + UDP, rounded).
    pub const HEADER_BYTES: usize = 42;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::NodeId;

    #[test]
    fn wire_size_includes_header() {
        let d = Datagram {
            src: Addr::new(NodeId(0), Port(1)),
            dst: Destination::Broadcast(Port(1)),
            payload: Bytes::from_static(b"abcd"),
            delivered_at: Micros::ZERO,
        };
        assert_eq!(d.wire_size(), 4 + Datagram::HEADER_BYTES);
    }
}
