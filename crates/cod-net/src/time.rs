//! Simulated time base.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in microseconds since LAN start.
///
/// Microsecond resolution comfortably resolves both frame periods (tens of
/// milliseconds) and per-datagram serialization delays (tens of microseconds
/// on fast Ethernet).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Micros(pub u64);

impl Micros {
    /// Zero time.
    pub const ZERO: Micros = Micros(0);

    /// Constructs from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Micros {
        Micros(ms * 1_000)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(s: u64) -> Micros {
        Micros(s * 1_000_000)
    }

    /// Constructs from fractional seconds, rounding to the nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Micros {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        Micros((secs * 1e6).round() as u64)
    }

    /// The value in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The value in whole milliseconds (truncated).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Micros) -> Micros {
        Micros(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Micros {
    type Output = Micros;
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl AddAssign for Micros {
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl Sub for Micros {
    type Output = Micros;
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0 - rhs.0)
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms", self.0 as f64 / 1e3)
    }
}

/// A monotonically advancing simulated clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimClock {
    now: Micros,
}

impl SimClock {
    /// Creates a clock starting at time zero.
    pub fn new() -> SimClock {
        SimClock { now: Micros::ZERO }
    }

    /// Current simulated time.
    pub fn now(&self) -> Micros {
        self.now
    }

    /// Advances the clock by `dt`.
    pub fn advance(&mut self, dt: Micros) {
        self.now += dt;
    }

    /// Advances the clock to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time (the clock is monotone).
    pub fn advance_to(&mut self, t: Micros) {
        assert!(t >= self.now, "clock cannot run backwards: {:?} -> {:?}", self.now, t);
        self.now = t;
    }

    /// Rewinds the clock to `t`, bypassing the monotonicity guarantee.
    ///
    /// This exists for session recycling only: when a simulator is reset for a
    /// new session the whole cluster (LAN included) is rewound to the canonical
    /// session epoch so a recycled run is bit-identical to a fresh one. Normal
    /// simulation code must use [`SimClock::advance_to`].
    pub fn reset_to(&mut self, t: Micros) {
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(Micros::from_millis(16).0, 16_000);
        assert_eq!(Micros::from_secs(2).0, 2_000_000);
        assert!((Micros::from_secs_f64(0.0625).as_secs_f64() - 0.0625).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = Micros(100) + Micros(50);
        assert_eq!(a, Micros(150));
        assert_eq!(a - Micros(100), Micros(50));
        assert_eq!(Micros(10).saturating_sub(Micros(20)), Micros::ZERO);
    }

    #[test]
    fn clock_is_monotone() {
        let mut c = SimClock::new();
        c.advance(Micros(10));
        c.advance_to(Micros(20));
        assert_eq!(c.now(), Micros(20));
    }

    #[test]
    #[should_panic]
    fn clock_rejects_backwards_jump() {
        let mut c = SimClock::new();
        c.advance_to(Micros(20));
        c.advance_to(Micros(10));
    }

    #[test]
    fn display_in_milliseconds() {
        assert_eq!(format!("{}", Micros(1_500)), "1.500 ms");
    }
}
