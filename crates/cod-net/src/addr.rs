//! Cluster addressing: nodes (computers) and ports (services on a computer).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one computer of the cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifies a service endpoint on a computer (the CB listens on a well-known port).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Port(pub u16);

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ":{}", self.0)
    }
}

/// A full endpoint address on the cluster LAN.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr {
    /// The computer.
    pub node: NodeId,
    /// The service port on that computer.
    pub port: Port,
}

impl Addr {
    /// Creates an address from a node and port.
    pub const fn new(node: NodeId, port: Port) -> Addr {
        Addr { node, port }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.node, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let a = Addr::new(NodeId(3), Port(40));
        assert_eq!(a.to_string(), "node3:40");
    }

    #[test]
    fn ordering_is_by_node_then_port() {
        let a = Addr::new(NodeId(1), Port(9));
        let b = Addr::new(NodeId(2), Port(1));
        assert!(a < b);
    }
}
