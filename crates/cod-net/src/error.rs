//! Error type for the network substrate.

use crate::addr::{Addr, NodeId};
use std::fmt;

/// Errors produced by the network substrate.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// The destination node is not attached to the LAN.
    UnknownNode(NodeId),
    /// The destination endpoint does not exist on the node.
    UnknownEndpoint(Addr),
    /// The transport has been shut down or its peer hub dropped.
    Disconnected,
    /// The payload exceeds the maximum transmission unit of the transport.
    PayloadTooLarge {
        /// Size that was attempted.
        size: usize,
        /// Maximum allowed size.
        max: usize,
    },
    /// An operating-system level I/O error (UDP transport only).
    Io(std::io::Error),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::UnknownEndpoint(a) => write!(f, "unknown endpoint {a}"),
            NetError::Disconnected => write!(f, "transport disconnected"),
            NetError::PayloadTooLarge { size, max } => {
                write!(f, "payload of {size} bytes exceeds transport maximum of {max} bytes")
            }
            NetError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetError::PayloadTooLarge { size: 99_999, max: 65_507 };
        let msg = e.to_string();
        assert!(msg.contains("99999"));
        assert!(msg.starts_with("payload"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<NetError>();
    }
}
