//! Deterministic fault injection for the simulated LAN.
//!
//! The interesting failures of an eight-PC cluster are distributed ones: lost
//! or duplicated datagrams, reordering, latency spikes while a switch buffers,
//! and short partitions while somebody trips over a cable. A [`FaultPlan`]
//! describes such a failure schedule declaratively; [`crate::SimLan`] applies
//! it on top of the nominal [`crate::LinkModel`] using a *dedicated* RNG
//! stream seeded from [`FaultPlan::seed`] and drawn per datagram before the
//! link's own loss draw, so for a given LAN configuration and traffic sequence
//! the same plan and seed reproduce the same fault schedule bit for bit, and
//! changing the link-jitter seed alone never re-aligns which datagrams fault.

use crate::addr::NodeId;
use crate::time::Micros;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Stochastic fault parameters of one (directed) link, or of every link when
/// used as the plan's default rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultRule {
    /// Probability in `[0, 1]` that a datagram is dropped (on top of the link
    /// model's own loss probability).
    pub drop_probability: f64,
    /// Probability in `[0, 1]` that a datagram is delivered twice.
    pub duplicate_probability: f64,
    /// Probability in `[0, 1]` that a datagram is held back long enough for
    /// later traffic to overtake it.
    pub reorder_probability: f64,
    /// How long a reordered datagram is held back, in microseconds.
    pub reorder_delay_us: u64,
}

impl LinkFaultRule {
    /// A rule that injects nothing.
    pub const fn none() -> LinkFaultRule {
        LinkFaultRule {
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
            reorder_delay_us: 0,
        }
    }

    /// Whether this rule can ever fire.
    pub fn is_none(&self) -> bool {
        self.drop_probability <= 0.0
            && self.duplicate_probability <= 0.0
            && self.reorder_probability <= 0.0
    }
}

impl Default for LinkFaultRule {
    fn default() -> LinkFaultRule {
        LinkFaultRule::none()
    }
}

/// A latency spike: every datagram sent during `[start, end)` suffers
/// `extra_latency_us` of additional one-way delay (a congested or
/// garbage-collecting switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySpike {
    /// Start of the spike window (inclusive).
    pub start: Micros,
    /// End of the spike window (exclusive).
    pub end: Micros,
    /// Additional one-way latency during the window, in microseconds.
    pub extra_latency_us: u64,
}

/// A partition window: during `[start, end)` the `isolated` nodes cannot
/// exchange datagrams with the rest of the cluster (traffic *among* the
/// isolated nodes still flows — they form their own segment).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// Start of the partition (inclusive).
    pub start: Micros,
    /// End of the partition (exclusive).
    pub end: Micros,
    /// The nodes cut off from the rest of the LAN.
    pub isolated: Vec<NodeId>,
}

impl PartitionWindow {
    /// Whether a datagram from `src` to `dst` at time `now` is severed by this window.
    pub fn severs(&self, now: Micros, src: NodeId, dst: NodeId) -> bool {
        if now < self.start || now >= self.end {
            return false;
        }
        let src_isolated = self.isolated.contains(&src);
        let dst_isolated = self.isolated.contains(&dst);
        src_isolated != dst_isolated
    }
}

/// A complete, seeded fault schedule for one simulated LAN.
///
/// Build one with the fluent constructors, then install it with
/// [`crate::SimLan::set_fault_plan`]:
///
/// ```
/// use cod_net::{FaultPlan, LanConfig, SimLan};
///
/// let lan = SimLan::shared(LanConfig::fast_ethernet(1));
/// SimLan::set_fault_plan(&lan, FaultPlan::seeded(7).with_drop_probability(0.05));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the dedicated fault RNG stream.
    pub seed: u64,
    /// Rule applied to every link without a specific override.
    pub default_rule: LinkFaultRule,
    /// Per-directed-link overrides, keyed by `(src, dst)` node.
    pub link_rules: BTreeMap<(NodeId, NodeId), LinkFaultRule>,
    /// Scheduled latency spikes.
    pub spikes: Vec<LatencySpike>,
    /// Scheduled partition windows.
    pub partitions: Vec<PartitionWindow>,
}

impl FaultPlan {
    /// A plan that injects nothing (the default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// An empty plan with an explicit fault-stream seed.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Sets the default drop probability for every link.
    pub fn with_drop_probability(mut self, p: f64) -> FaultPlan {
        self.default_rule.drop_probability = p;
        self
    }

    /// Sets the default duplication probability for every link.
    pub fn with_duplicate_probability(mut self, p: f64) -> FaultPlan {
        self.default_rule.duplicate_probability = p;
        self
    }

    /// Sets the default reorder probability and hold-back delay for every link.
    pub fn with_reordering(mut self, p: f64, delay_us: u64) -> FaultPlan {
        self.default_rule.reorder_probability = p;
        self.default_rule.reorder_delay_us = delay_us;
        self
    }

    /// Overrides the rule of one directed link.
    pub fn with_link_rule(mut self, src: NodeId, dst: NodeId, rule: LinkFaultRule) -> FaultPlan {
        self.link_rules.insert((src, dst), rule);
        self
    }

    /// Schedules a latency spike.
    pub fn with_spike(mut self, start: Micros, end: Micros, extra_latency_us: u64) -> FaultPlan {
        self.spikes.push(LatencySpike { start, end, extra_latency_us });
        self
    }

    /// Schedules a partition window isolating `nodes` from the rest of the LAN.
    pub fn with_partition(mut self, start: Micros, end: Micros, nodes: Vec<NodeId>) -> FaultPlan {
        self.partitions.push(PartitionWindow { start, end, isolated: nodes });
        self
    }

    /// The rule governing the directed link `src -> dst`.
    pub fn rule_for(&self, src: NodeId, dst: NodeId) -> LinkFaultRule {
        self.link_rules.get(&(src, dst)).copied().unwrap_or(self.default_rule)
    }

    /// Total extra latency from spikes active at `now`, in microseconds.
    pub fn spike_extra_us(&self, now: Micros) -> u64 {
        self.spikes
            .iter()
            .filter(|s| now >= s.start && now < s.end)
            .map(|s| s.extra_latency_us)
            .sum()
    }

    /// Whether a datagram from `src` to `dst` at `now` crosses an active partition.
    pub fn partitioned(&self, now: Micros, src: NodeId, dst: NodeId) -> bool {
        self.partitions.iter().any(|p| p.severs(now, src, dst))
    }

    /// Whether the plan can never inject anything (fast-path check).
    pub fn is_none(&self) -> bool {
        self.default_rule.is_none()
            && self.link_rules.values().all(LinkFaultRule::is_none)
            && self.spikes.is_empty()
            && self.partitions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::seeded(9).is_none());
        assert!(!FaultPlan::none().with_drop_probability(0.1).is_none());
        assert!(!FaultPlan::none().with_spike(Micros(0), Micros(10), 5).is_none());
    }

    #[test]
    fn link_rule_override_wins_over_default() {
        let lossy = LinkFaultRule { drop_probability: 0.5, ..LinkFaultRule::none() };
        let plan = FaultPlan::none().with_drop_probability(0.01).with_link_rule(
            NodeId(1),
            NodeId(2),
            lossy,
        );
        assert_eq!(plan.rule_for(NodeId(1), NodeId(2)).drop_probability, 0.5);
        assert_eq!(plan.rule_for(NodeId(2), NodeId(1)).drop_probability, 0.01);
        assert_eq!(plan.rule_for(NodeId(0), NodeId(3)).drop_probability, 0.01);
    }

    #[test]
    fn spikes_accumulate_inside_their_window() {
        let plan = FaultPlan::none().with_spike(Micros(100), Micros(200), 30).with_spike(
            Micros(150),
            Micros(300),
            50,
        );
        assert_eq!(plan.spike_extra_us(Micros(50)), 0);
        assert_eq!(plan.spike_extra_us(Micros(100)), 30);
        assert_eq!(plan.spike_extra_us(Micros(175)), 80);
        assert_eq!(plan.spike_extra_us(Micros(250)), 50);
        assert_eq!(plan.spike_extra_us(Micros(300)), 0);
    }

    #[test]
    fn partition_severs_only_across_the_cut() {
        let plan =
            FaultPlan::none().with_partition(Micros(10), Micros(20), vec![NodeId(0), NodeId(1)]);
        // Across the cut, during the window.
        assert!(plan.partitioned(Micros(10), NodeId(0), NodeId(5)));
        assert!(plan.partitioned(Micros(15), NodeId(5), NodeId(1)));
        // Within either segment traffic still flows.
        assert!(!plan.partitioned(Micros(15), NodeId(0), NodeId(1)));
        assert!(!plan.partitioned(Micros(15), NodeId(4), NodeId(5)));
        // Outside the window nothing is severed.
        assert!(!plan.partitioned(Micros(9), NodeId(0), NodeId(5)));
        assert!(!plan.partitioned(Micros(20), NodeId(0), NodeId(5)));
    }
}
