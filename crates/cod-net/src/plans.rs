//! The canonical LAN fault plans swept by the scenario matrix and drawn from
//! by the fleet workload generator.
//!
//! These lived in `cod-testkit` originally; they moved here (next to
//! [`FaultPlan`] itself) so that both the testkit matrix and the `cod-fleet`
//! serving layer can share one set of named failure modes without a
//! dependency cycle. `cod_testkit::plans` re-exports this module.

use crate::{FaultPlan, Micros, NodeId};

/// A named fault plan for matrix reports.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedPlan {
    /// Short name used in scenario ids (e.g. `loss5`).
    pub name: &'static str,
    /// The plan itself.
    pub plan: FaultPlan,
}

/// A healthy LAN (the experimental control).
pub fn baseline(seed: u64) -> NamedPlan {
    NamedPlan { name: "clean", plan: FaultPlan::seeded(seed) }
}

/// 2% uniform datagram loss.
pub fn light_loss(seed: u64) -> NamedPlan {
    NamedPlan { name: "loss2", plan: FaultPlan::seeded(seed).with_drop_probability(0.02) }
}

/// 5% uniform datagram loss — the acceptance bar of the fault-tolerance suite.
pub fn heavy_loss(seed: u64) -> NamedPlan {
    NamedPlan { name: "loss5", plan: FaultPlan::seeded(seed).with_drop_probability(0.05) }
}

/// A one-second, 80 ms latency spike starting at t = 2 s (a congested switch).
/// 80 ms exceeds the 62.5 ms frame period, so spiked datagrams miss their
/// frame and arrive one executive frame late.
pub fn latency_spike(seed: u64) -> NamedPlan {
    NamedPlan {
        name: "spike",
        plan: FaultPlan::seeded(seed).with_spike(
            Micros::from_secs(2),
            Micros::from_secs(3),
            80_000,
        ),
    }
}

/// 10% duplication and 10% reordering (held back 70 ms, i.e. past a frame).
pub fn dup_reorder(seed: u64) -> NamedPlan {
    NamedPlan {
        name: "chaos",
        plan: FaultPlan::seeded(seed)
            .with_duplicate_probability(0.10)
            .with_reordering(0.10, 70_000),
    }
}

/// Display-0's computer falls off the LAN from t = 2 s to t = 3 s (a tripped
/// cable), then rejoins. Node 0 hosts `display-0` in the standard rack.
pub fn partition_blip(seed: u64) -> NamedPlan {
    NamedPlan {
        name: "partition",
        plan: FaultPlan::seeded(seed).with_partition(
            Micros::from_secs(2),
            Micros::from_secs(3),
            vec![NodeId(0)],
        ),
    }
}

/// The full set swept by the scenario matrix.
pub fn all(seed: u64) -> Vec<NamedPlan> {
    vec![
        baseline(seed),
        light_loss(seed),
        heavy_loss(seed),
        latency_spike(seed),
        dup_reorder(seed),
        partition_blip(seed),
    ]
}

/// The reduced set used by `--quick` (CI smoke) runs.
pub fn quick(seed: u64) -> Vec<NamedPlan> {
    vec![baseline(seed), heavy_loss(seed), latency_spike(seed)]
}
