//! Experiment E14 (`observability`) — the deterministic trace sink's
//! overhead on the batched serving path; see `crates/cod-bench/EXPERIMENTS.md`.
//! Thin wrapper over `cod_bench::experiments::observability` so `cargo
//! bench` and `bench_report` report identical statistics. Set
//! `COD_BENCH_QUICK=1` for a smoke run.

use cod_bench::experiments::{observability, ExperimentCtx};

fn main() {
    let result = observability::run(&ExperimentCtx::from_env());
    println!("{}", result.summary());
}
