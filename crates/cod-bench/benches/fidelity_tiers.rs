//! Experiment E12 (`fidelity_tiers`) — Coarse-vs-Full score drift and the
//! tiered serving capacity multiplier; see `crates/cod-bench/EXPERIMENTS.md`.
//! Thin wrapper over `cod_bench::experiments::fidelity_tiers` so `cargo
//! bench` and `bench_report` report identical statistics. Set
//! `COD_BENCH_QUICK=1` for a smoke run.

use cod_bench::experiments::{fidelity_tiers, ExperimentCtx};

fn main() {
    let result = fidelity_tiers::run(&ExperimentCtx::from_env());
    println!("{}", result.summary());
}
