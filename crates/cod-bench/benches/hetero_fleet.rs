//! Experiment E10 (`hetero_fleet`) — heterogeneous fleet serving, speed-
//! weighted vs residency-only placement; see `crates/cod-bench/EXPERIMENTS.md`.
//! Thin wrapper over `cod_bench::experiments::hetero_fleet` so `cargo bench`
//! and `bench_report` report identical statistics. Set `COD_BENCH_QUICK=1`
//! for a smoke run.

use cod_bench::experiments::{hetero_fleet, ExperimentCtx};

fn main() {
    let result = hetero_fleet::run(&ExperimentCtx::from_env());
    println!("{}", result.summary());
}
