//! Experiments E1 / E2 — the headline result of the paper's §4.
//!
//! Regenerates the frame-rate-versus-polygon-budget series for the TNT2-class
//! hardware model (paper: 16 fps at 3 235 polygons with the synchronized
//! three-channel surround view) and benchmarks the real software rasterizer on
//! the training world.

use crane_scene::world::TrainingWorld;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use render_sim::{Camera, GpuCostModel, Renderer, SurroundView};
use sim_math::Vec3;

fn print_reproduction_table() {
    println!("\n=== E1/E2: surround-view frame rate vs polygon budget (TNT2-class model) ===");
    println!("polygons | sync fps | free-run fps | next-gen sync fps");
    let mut next_gen = SurroundView::paper_configuration();
    next_gen.set_cost_model(GpuCostModel::next_generation());
    for polygons in [500usize, 1_000, 2_000, 3_235, 5_000, 8_000, 12_000, 20_000] {
        let paper = SurroundView::paper_configuration().estimate(polygons);
        let faster = next_gen.estimate(polygons);
        println!(
            "{polygons:>8} | {:>8.1} | {:>12.1} | {:>17.1}",
            paper.synchronized_fps(),
            paper.free_running_fps(),
            faster.synchronized_fps()
        );
    }
    let world = TrainingWorld::build();
    let headline = SurroundView::paper_configuration().estimate(world.polygon_count());
    println!(
        "headline: {} polygons -> {:.1} fps synchronized (paper measured 16 fps at 3 235 polygons)\n",
        world.polygon_count(),
        headline.synchronized_fps()
    );
}

fn bench_rasterizer(c: &mut Criterion) {
    print_reproduction_table();

    let world = TrainingWorld::build();
    let camera = Camera::look_at(Vec3::new(0.0, 5.0, -55.0), Vec3::new(0.0, 2.0, 40.0));
    let mut group = c.benchmark_group("rasterizer");
    group.sample_size(10);
    for size in [(80usize, 60usize), (160, 120)] {
        group.bench_with_input(
            BenchmarkId::new("render_training_world", format!("{}x{}", size.0, size.1)),
            &size,
            |b, (w, h)| {
                let mut renderer = Renderer::new(*w, *h);
                b.iter(|| renderer.render(&world.scene, &camera));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("cost_model");
    group.sample_size(20);
    group.bench_function("estimate_surround_3235_polygons", |b| {
        let view = SurroundView::paper_configuration();
        b.iter(|| view.estimate(3_235).synchronized_fps());
    });
    group.finish();
}

criterion_group!(benches, bench_rasterizer);
criterion_main!(benches);
