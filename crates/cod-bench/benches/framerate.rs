//! Experiment E1 (`framerate`) — surround-view frame rate vs polygon budget;
//! see `crates/cod-bench/EXPERIMENTS.md`. Thin wrapper over
//! `cod_bench::experiments::framerate` so `cargo bench` and `bench_report`
//! report identical statistics. Set `COD_BENCH_QUICK=1` for a smoke run.

use cod_bench::experiments::{framerate, ExperimentCtx};

fn main() {
    let result = framerate::run(&ExperimentCtx::from_env());
    println!("{}", result.summary());
}
