//! Experiment E2 (`dynamics`) — per-frame dynamics cost and the lift hook's
//! inertia oscillation; see `crates/cod-bench/EXPERIMENTS.md`. Thin wrapper
//! over `cod_bench::experiments::dynamics` so `cargo bench` and
//! `bench_report` report identical statistics. Set `COD_BENCH_QUICK=1` for a
//! smoke run.

use cod_bench::experiments::{dynamics, ExperimentCtx};

fn main() {
    let result = dynamics::run(&ExperimentCtx::from_env());
    println!("{}", result.summary());
}
