//! Experiment E8 — the dynamics module's per-frame cost and the inertia
//! oscillation of the lift hook.
//!
//! Benchmarks the pendulum integration, the vehicle + rig kinematics, and
//! prints the oscillation-decay series (swing amplitude after the boom stops)
//! for several cargo masses.

use crane_physics::terrain::FlatTerrain;
use crane_physics::{
    CablePendulum, CraneControls, CraneRig, CraneVehicle, DriveControls, VehicleParams,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim_math::Vec3;

const DT: f64 = 1.0 / 60.0;

fn print_reproduction_table() {
    println!("\n=== E8: inertia oscillation of the lift hook (decay after the boom stops) ===");
    println!("cargo (t) | peak swing (m) | swing after 5 s | swing after 15 s | at rest");
    for cargo_tonnes in [0.5f64, 2.0, 5.0, 20.0] {
        let mut suspension = Vec3::new(0.0, 15.0, 0.0);
        let mut pendulum = CablePendulum::new(suspension, 6.0, 120.0);
        pendulum.attach_cargo(cargo_tonnes * 1_000.0);
        // Slew the boom tip sideways for 1.5 s, then stop.
        let mut peak: f64 = 0.0;
        for i in 0..90 {
            suspension = Vec3::new(0.06 * i as f64, 15.0, 0.0);
            pendulum.step(suspension, 6.0, DT);
            peak = peak.max(pendulum.swing_amplitude(suspension));
        }
        let mut after_5 = 0.0;
        for i in 0..(15 * 60) {
            pendulum.step(suspension, 6.0, DT);
            if i == 5 * 60 {
                after_5 = pendulum.swing_amplitude(suspension);
            }
        }
        let after_15 = pendulum.swing_amplitude(suspension);
        println!(
            "{cargo_tonnes:>9.1} | {peak:>14.2} | {after_5:>15.3} | {after_15:>16.3} | {}",
            pendulum.is_at_rest(suspension)
        );
    }
    println!();
}

fn bench_dynamics(c: &mut Criterion) {
    print_reproduction_table();

    let mut group = c.benchmark_group("dynamics");
    group.sample_size(30);

    for cargo in [0.0f64, 5_000.0] {
        group.bench_with_input(
            BenchmarkId::new("pendulum_frame", format!("{cargo}kg")),
            &cargo,
            |b, cargo| {
                let suspension = Vec3::new(0.0, 15.0, 0.0);
                let mut pendulum = CablePendulum::new(suspension, 6.0, 120.0);
                pendulum.attach_cargo(*cargo);
                b.iter(|| pendulum.step(suspension, 6.0, DT));
            },
        );
    }

    group.bench_function("vehicle_and_rig_frame", |b| {
        let terrain = FlatTerrain::default();
        let mut vehicle = CraneVehicle::new(VehicleParams::default(), Vec3::ZERO, 0.0);
        let mut rig = CraneRig::default();
        b.iter(|| {
            vehicle.step(
                DriveControls { throttle: 0.7, steering: 0.2, ..Default::default() },
                &terrain,
                DT,
            );
            rig.step(CraneControls { slew: 0.4, luff: 0.2, ..Default::default() }, DT);
            rig.boom_tip_world(&vehicle.chassis_transform())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_dynamics);
criterion_main!(benches);
