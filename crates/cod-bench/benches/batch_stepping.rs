//! Experiment E11 (`batch_stepping`) — scalar vs batched lockstep serving of
//! same-shape session cohorts; see `crates/cod-bench/EXPERIMENTS.md`. Thin
//! wrapper over `cod_bench::experiments::batch_stepping` so `cargo bench`
//! and `bench_report` report identical statistics. Set `COD_BENCH_QUICK=1`
//! for a smoke run.

use cod_bench::experiments::{batch_stepping, ExperimentCtx};

fn main() {
    let result = batch_stepping::run(&ExperimentCtx::from_env());
    println!("{}", result.summary());
}
