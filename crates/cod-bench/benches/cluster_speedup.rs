//! Experiment E6 — pipelining on the COD versus a single desktop computer.
//!
//! Prints the analytic frame-rate table for 1–8 computers (load-balanced
//! placement of the paper's seven modules plus the sync server) and benchmarks
//! the wall-clock cost of executing frames on the full eight-computer
//! simulator, measuring its modeled cluster vs sequential frame rates.

use cod_cluster::{balance_load, LpLoad, PipelineModel, StageCost};
use cod_net::Micros;
use crane_sim::{CraneSimulator, OperatorKind, SimulatorConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn module_costs() -> Vec<StageCost> {
    vec![
        StageCost::new("visual-0", Micros::from_millis(60)),
        StageCost::new("visual-1", Micros::from_millis(60)),
        StageCost::new("visual-2", Micros::from_millis(60)),
        StageCost::new("sync-server", Micros(500)),
        StageCost::new("dynamics", Micros::from_millis(15)),
        StageCost::new("dashboard", Micros::from_millis(2)),
        StageCost::new("scenario", Micros::from_millis(1)),
        StageCost::new("instructor", Micros::from_millis(2)),
        StageCost::new("audio", Micros::from_millis(3)),
        StageCost::new("motion-platform", Micros::from_millis(6)),
    ]
}

fn print_reproduction_table() {
    let stages = module_costs();
    let model = PipelineModel::new(stages.clone(), Micros(200));
    println!("\n=== E6: frame rate vs number of desktop computers (load-balanced) ===");
    println!("computers | frame period | fps");
    for computers in 1..=8usize {
        let loads: Vec<LpLoad> = stages.iter().map(|s| LpLoad::new(&s.name, s.cost)).collect();
        let placement = balance_load(&loads, computers);
        println!(
            "{computers:>9} | {:>12} | {:>5.1}",
            placement.makespan,
            1.0 / placement.makespan.as_secs_f64()
        );
    }
    println!(
        "pipeline speedup (8 PCs vs 1 PC): {:.2}x   end-to-end latency: {}",
        model.speedup(),
        model.pipeline_latency()
    );

    // Measured with the real executive.
    let mut simulator = CraneSimulator::new(SimulatorConfig {
        operator: OperatorKind::Idle,
        exam_frames: 60,
        display_width: 64,
        display_height: 48,
        ..SimulatorConfig::default()
    })
    .expect("simulator builds");
    simulator.run().expect("session runs");
    let report = simulator.report();
    println!(
        "measured: cluster {:.1} fps vs single PC {:.1} fps (speedup {:.2}x)\n",
        report.cluster_fps,
        report.sequential_fps,
        report.cluster_fps / report.sequential_fps.max(1e-9)
    );
}

fn bench_cluster(c: &mut Criterion) {
    print_reproduction_table();

    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);
    group.bench_function("full_simulator_frame_8_computers", |b| {
        let mut simulator = CraneSimulator::new(SimulatorConfig {
            operator: OperatorKind::Exam,
            exam_frames: 0,
            display_width: 64,
            display_height: 48,
            ..SimulatorConfig::default()
        })
        .expect("simulator builds");
        b.iter(|| simulator.run_frames(1).unwrap());
    });
    group.bench_function("load_balance_ten_modules_on_eight_computers", |b| {
        let loads: Vec<LpLoad> =
            module_costs().iter().map(|s| LpLoad::new(&s.name, s.cost)).collect();
        b.iter(|| balance_load(&loads, 8));
    });
    group.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
