//! Experiment E8 (`cluster_speedup`) — pipelining on the COD versus a single
//! desktop computer; see `crates/cod-bench/EXPERIMENTS.md`. Thin wrapper
//! over `cod_bench::experiments::cluster_speedup` so `cargo bench` and
//! `bench_report` report identical statistics. Set `COD_BENCH_QUICK=1` for a
//! smoke run.

use cod_bench::experiments::{cluster_speedup, ExperimentCtx};

fn main() {
    let result = cluster_speedup::run(&ExperimentCtx::from_env());
    println!("{}", result.summary());
}
