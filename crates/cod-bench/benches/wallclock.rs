//! Experiment E13 (`wallclock`) — modeled vs wall-clock sessions/sec under
//! the work-stealing executor; see `crates/cod-bench/EXPERIMENTS.md`. Thin
//! wrapper over `cod_bench::experiments::wallclock` so `cargo bench` and
//! `bench_report` report identical statistics. Set `COD_BENCH_QUICK=1` for a
//! smoke run.

use cod_bench::experiments::{wallclock, ExperimentCtx};

fn main() {
    let result = wallclock::run(&ExperimentCtx::from_env());
    println!("{}", result.summary());
}
