//! Experiment E5 (`routing`) — virtual-channel routing, co-resident vs
//! cross-machine; see `crates/cod-bench/EXPERIMENTS.md`. Thin wrapper over
//! `cod_bench::experiments::routing` so `cargo bench` and `bench_report`
//! report identical statistics. Set `COD_BENCH_QUICK=1` for a smoke run.

use cod_bench::experiments::{routing, ExperimentCtx};

fn main() {
    let result = routing::run(&ExperimentCtx::from_env());
    println!("{}", result.summary());
}
