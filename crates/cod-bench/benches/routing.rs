//! Experiment E5 — virtual-channel routing: co-resident versus cross-machine.
//!
//! The push/pull data plane of the Communication Backbone routes an update
//! either directly to a co-resident subscriber or over the LAN on an
//! established virtual channel; this bench measures both paths for a range of
//! payload sizes.

use cod_bench::EstablishedPair;
use cod_cb::{AttributeId, CbKernel, ClassRegistry, Value};
use cod_net::{LanConfig, Micros, SimLan};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_remote_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_remote");
    group.sample_size(20);
    for payload in [16usize, 256, 1_024, 4_096] {
        group.throughput(Throughput::Bytes(payload as u64));
        group.bench_with_input(BenchmarkId::from_parameter(payload), &payload, |b, payload| {
            let mut pair = EstablishedPair::new(LanConfig::fast_ethernet(3));
            let object =
                pair.publisher.register_object_instance(pair.publisher_lp, pair.class).unwrap();
            let blob = Value::Bytes(vec![0xAB; *payload]);
            b.iter(|| {
                pair.publisher
                    .update_attribute_values(
                        pair.publisher_lp,
                        object,
                        [(AttributeId(0), blob.clone())].into(),
                        pair.now,
                    )
                    .unwrap();
                pair.round();
                pair.round();
                let got = pair.subscriber.reflections(pair.subscriber_lp);
                assert!(!got.is_empty());
                got.len()
            });
        });
    }
    group.finish();
}

fn bench_local_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_local");
    group.sample_size(20);
    for payload in [16usize, 1_024, 4_096] {
        group.throughput(Throughput::Bytes(payload as u64));
        group.bench_with_input(BenchmarkId::from_parameter(payload), &payload, |b, payload| {
            let mut registry = ClassRegistry::new();
            let class = registry.register_object_class("Bench", &["payload"]).unwrap();
            let lan = SimLan::shared(LanConfig::ideal(1));
            let mut kernel = CbKernel::new(SimLan::attach(&lan, "pc"), registry);
            let producer = kernel.register_lp("producer");
            let consumer = kernel.register_lp("consumer");
            kernel.publish_object_class(producer, class).unwrap();
            kernel.subscribe_object_class(consumer, class).unwrap();
            let object = kernel.register_object_instance(producer, class).unwrap();
            let blob = Value::Bytes(vec![0xCD; *payload]);
            b.iter(|| {
                kernel
                    .update_attribute_values(
                        producer,
                        object,
                        [(AttributeId(0), blob.clone())].into(),
                        Micros::ZERO,
                    )
                    .unwrap();
                let got = kernel.reflections(consumer);
                assert_eq!(got.len(), 1);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_remote_routing, bench_local_routing);
criterion_main!(benches);
