//! Experiment E7 (`sync_overhead`) — the cost of the frame-synchronization
//! server; see `crates/cod-bench/EXPERIMENTS.md`. Thin wrapper over
//! `cod_bench::experiments::sync_overhead` so `cargo bench` and
//! `bench_report` report identical statistics. Set `COD_BENCH_QUICK=1` for a
//! smoke run.

use cod_bench::experiments::{sync_overhead, ExperimentCtx};

fn main() {
    let result = sync_overhead::run(&ExperimentCtx::from_env());
    println!("{}", result.summary());
}
