//! Experiment E3 — the cost of the frame-synchronization server.
//!
//! The paper attributes the drop to 16 fps to "the overhead of the
//! synchronization among the three graphical computers"; this bench quantifies
//! the swap-lock barrier for 1–6 display channels and benchmarks the barrier
//! protocol itself running over the Communication Backbone.

use cod_cb::{CbApi, CbError, ClassRegistry};
use cod_cluster::{
    Cluster, ClusterConfig, FrameSyncClient, FrameSyncFom, FrameSyncServer, LogicalProcess,
    SyncBarrierModel,
};
use cod_net::Micros;
use criterion::{criterion_group, criterion_main, Criterion};

struct BenchDisplay {
    client: FrameSyncClient,
}

impl LogicalProcess for BenchDisplay {
    fn name(&self) -> &str {
        "bench-display"
    }
    fn init(&mut self, cb: &mut dyn CbApi) -> Result<(), CbError> {
        self.client.init(cb)
    }
    fn step(&mut self, cb: &mut dyn CbApi, _dt: f64) -> Result<(), CbError> {
        if self.client.is_waiting() {
            self.client.poll_release(cb);
        } else {
            self.client.report_ready(cb)?;
        }
        Ok(())
    }
}

fn print_reproduction_table() {
    println!("\n=== E3: swap-lock overhead vs number of display channels ===");
    println!("channels | free-run fps | synchronized fps | overhead %");
    let model =
        SyncBarrierModel { round_trip: Micros::from_millis(1), server_processing: Micros(500) };
    for channels in 1..=6usize {
        // Every channel renders the same 3 235-polygon scene; small spread from load.
        let render_times: Vec<Micros> =
            (0..channels).map(|i| Micros::from_millis(58 + i as u64)).collect();
        let free = SyncBarrierModel::unsynchronized_period(&render_times);
        let sync = model.synchronized_period(&render_times);
        println!(
            "{channels:>8} | {:>12.1} | {:>16.1} | {:>9.1}",
            1.0 / free.as_secs_f64(),
            1.0 / sync.as_secs_f64(),
            model.overhead_fraction(&render_times) * 100.0
        );
    }
    println!();
}

fn bench_barrier_protocol(c: &mut Criterion) {
    print_reproduction_table();

    let mut group = c.benchmark_group("frame_sync");
    group.sample_size(10);
    for channels in [1usize, 3, 6] {
        group.bench_function(format!("barrier_protocol_{channels}_channels"), |b| {
            let mut fom = ClassRegistry::new();
            let sync_fom = FrameSyncFom::register(&mut fom).unwrap();
            let mut cluster = Cluster::new(ClusterConfig::default(), fom);
            for i in 0..channels {
                let pc = cluster.add_computer(&format!("display-{i}"));
                cluster
                    .add_lp(
                        pc,
                        Box::new(BenchDisplay { client: FrameSyncClient::new(sync_fom, i as u32) }),
                    )
                    .unwrap();
            }
            let server_pc = cluster.add_computer("sync-server");
            cluster.add_lp(server_pc, Box::new(FrameSyncServer::new(sync_fom, channels))).unwrap();
            cluster.initialize().unwrap();
            b.iter(|| cluster.run_frames(10).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_barrier_protocol);
criterion_main!(benches);
