//! Experiment E4 (`platform`) — the motion-platform controller and its pose
//! interpolation; see `crates/cod-bench/EXPERIMENTS.md`. Thin wrapper over
//! `cod_bench::experiments::platform` so `cargo bench` and `bench_report`
//! report identical statistics. Set `COD_BENCH_QUICK=1` for a smoke run.

use cod_bench::experiments::{platform, ExperimentCtx};

fn main() {
    let result = platform::run(&ExperimentCtx::from_env());
    println!("{}", result.summary());
}
