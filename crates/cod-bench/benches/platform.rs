//! Experiment E9 — the motion-platform controller.
//!
//! Benchmarks the Stewart-platform inverse kinematics and the full washout +
//! interpolation + actuator servo step, and prints how the interpolation keeps
//! the platform smooth across visual frame rates (16–60 Hz).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use motion_platform::{
    inverse_kinematics, MotionController, MotionCue, PlatformPose, StewartGeometry,
};
use sim_math::Vec3;

fn print_reproduction_table() {
    println!("\n=== E9: pose interpolation synchronized with the visual frame rate ===");
    println!("visual fps | servo rate | max pose step per servo tick (m + rad)");
    for fps in [16.0f64, 30.0, 60.0] {
        let mut controller = MotionController::new(fps, 7);
        let servo_hz = 192.0;
        let mut previous = PlatformPose::neutral();
        let mut max_step: f64 = 0.0;
        for frame in 0..64 {
            controller.push_cue(MotionCue {
                acceleration: Vec3::new(0.0, 0.0, if frame % 16 < 8 { 2.5 } else { -2.5 }),
                engine_intensity: 0.6,
                ..Default::default()
            });
            for _ in 0..(servo_hz / fps) as usize {
                let (pose, _) = controller.servo_step(1.0 / servo_hz);
                max_step = max_step.max(pose.distance(&previous));
                previous = pose;
            }
        }
        println!("{fps:>10.0} | {servo_hz:>10.0} | {max_step:>10.4}");
    }
    println!();
}

fn bench_platform(c: &mut Criterion) {
    print_reproduction_table();

    let mut group = c.benchmark_group("motion_platform");
    group.sample_size(30);

    group.bench_function("inverse_kinematics", |b| {
        let geometry = StewartGeometry::training_platform();
        let pose = PlatformPose::from_euler(Vec3::new(0.05, 0.02, -0.04), 0.02, 0.06, -0.03);
        b.iter(|| inverse_kinematics(&geometry, &pose));
    });

    for fps in [16.0f64, 60.0] {
        group.bench_with_input(
            BenchmarkId::new("controller_visual_frame", fps as u64),
            &fps,
            |b, fps| {
                let mut controller = MotionController::new(*fps, 3);
                b.iter(|| {
                    controller.push_cue(MotionCue {
                        acceleration: Vec3::new(0.5, 0.0, 1.5),
                        pitch: 0.02,
                        roll: -0.01,
                        yaw_rate: 0.1,
                        engine_intensity: 0.7,
                    });
                    for _ in 0..12 {
                        controller.servo_step(1.0 / (fps * 12.0));
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_platform);
criterion_main!(benches);
