//! Experiment E6 (`init_protocol`) — the initialization protocol of the
//! Communication Backbone; see `crates/cod-bench/EXPERIMENTS.md`. Thin
//! wrapper over `cod_bench::experiments::init_protocol` so `cargo bench` and
//! `bench_report` report identical statistics. Set `COD_BENCH_QUICK=1` for a
//! smoke run.

use cod_bench::experiments::{init_protocol, ExperimentCtx};

fn main() {
    let result = init_protocol::run(&ExperimentCtx::from_env());
    println!("{}", result.summary());
}
