//! Experiment E3 (`collision`) — the multi-level collision detection of
//! §3.6; see `crates/cod-bench/EXPERIMENTS.md`. Thin wrapper over
//! `cod_bench::experiments::collision` so `cargo bench` and `bench_report`
//! report identical statistics. Set `COD_BENCH_QUICK=1` for a smoke run.

use cod_bench::experiments::{collision, ExperimentCtx};

fn main() {
    let result = collision::run(&ExperimentCtx::from_env());
    println!("{}", result.summary());
}
