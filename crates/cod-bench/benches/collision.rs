//! Experiment E7 — the multi-level collision detection of §3.6.
//!
//! Compares the bounding-sphere → AABB → exact hierarchy (optionally with the
//! uniform-grid broad phase) against the naive all-exact baseline as the
//! obstacle count grows, and prints the per-level test counts.

use crane_physics::collision::CollisionWorld;
use crane_scene::bounds::Aabb;
use crane_scene::world::TrainingWorld;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim_math::Vec3;

fn synthetic_world(obstacles: usize) -> CollisionWorld {
    let mut world = CollisionWorld::new();
    let per_row = (obstacles as f64).sqrt().ceil() as usize;
    for i in 0..obstacles {
        let x = (i % per_row) as f64 * 6.0;
        let z = (i / per_row) as f64 * 6.0;
        world.add_static(
            &format!("obstacle-{i}"),
            Aabb::from_center_half_extents(Vec3::new(x, 1.0, z), Vec3::new(1.0, 1.0, 1.0)),
            i % 7 == 0,
        );
    }
    world
}

fn print_reproduction_table() {
    println!("\n=== E7: multi-level collision detection vs naive baseline ===");
    println!("obstacles | exact tests (multi-level) | exact tests (naive) | reduction");
    for obstacles in [10usize, 100, 500, 2_000, 5_000] {
        let mut world = synthetic_world(obstacles);
        world.build_grid(12.0);
        world.reset_stats();
        let probe = Vec3::new(30.0, 1.0, 30.0);
        world.query_sphere(probe, 1.0);
        let hierarchical = world.stats().exact_tests;
        world.reset_stats();
        world.query_sphere_naive(probe, 1.0);
        let naive = world.stats().exact_tests;
        println!(
            "{obstacles:>9} | {hierarchical:>25} | {naive:>19} | {:>8.1}x",
            naive as f64 / hierarchical.max(1) as f64
        );
    }
    println!();
}

fn bench_collision(c: &mut Criterion) {
    print_reproduction_table();

    let mut group = c.benchmark_group("collision_query");
    group.sample_size(30);
    for obstacles in [100usize, 1_000, 5_000] {
        let mut hierarchical = synthetic_world(obstacles);
        hierarchical.build_grid(12.0);
        let mut naive = synthetic_world(obstacles);
        let probe = Vec3::new(30.0, 1.0, 30.0);
        group.bench_with_input(BenchmarkId::new("multi_level", obstacles), &obstacles, |b, _| {
            b.iter(|| hierarchical.query_sphere(probe, 1.0))
        });
        group.bench_with_input(BenchmarkId::new("naive", obstacles), &obstacles, |b, _| {
            b.iter(|| naive.query_sphere_naive(probe, 1.0))
        });
    }
    group.finish();

    // The real training world, hook sweeping along the exam trajectory.
    let training = TrainingWorld::build();
    let mut world = CollisionWorld::from_obstacles(&training.obstacles);
    world.build_grid(12.0);
    let path: Vec<Vec3> = training.course.trajectory.clone();
    c.bench_function("collision_training_world_trajectory_sweep", |b| {
        b.iter(|| {
            let mut contacts = 0;
            for p in &path {
                contacts += world.query_sphere(*p + Vec3::new(0.0, 2.0, 0.0), 0.8).len();
            }
            contacts
        })
    });
}

criterion_group!(benches, bench_collision);
criterion_main!(benches);
