//! Experiment E9 (`fleet`) — fleet serving throughput versus shard count;
//! see `crates/cod-bench/EXPERIMENTS.md`. Thin wrapper over
//! `cod_bench::experiments::fleet` so `cargo bench` and `bench_report`
//! report identical statistics. Set `COD_BENCH_QUICK=1` for a smoke run.

use cod_bench::experiments::{fleet, ExperimentCtx};

fn main() {
    let result = fleet::run(&ExperimentCtx::from_env());
    println!("{}", result.summary());
}
