//! Compatibility shim: the hand-rolled JSON layer moved to the shared
//! [`cod_json`] crate so cod-bench (`BENCH_cod.json`), cod-testkit
//! (`SCENARIOS_cod.json`) and cod-fleet (`FLEET_cod.json`) stop growing
//! parallel copies. Existing `cod_bench::json::Json` callers keep working
//! through this re-export.

pub use cod_json::{Json, JsonError};
