//! The measurement layer of the crane-simulator workspace.
//!
//! Each bench target under `benches/` regenerates one experiment of
//! `EXPERIMENTS.md`. The heavy lifting lives here as library code:
//!
//! - [`measure`] — warm-up, calibrated iteration counts, median/p95/p99,
//!   MAD outlier rejection and bootstrap confidence intervals;
//! - [`report`] — the `BENCH_cod.json` schema and the measured-vs-paper
//!   comparison table;
//! - [`json`] — re-export of the shared [`cod_json`] tree backing the report
//!   (the vendored serde is a marker-trait stub);
//! - [`experiments`] — experiments E1–E10 themselves, shared by the bench
//!   targets and the `bench_report` runner binary.

pub mod experiments;
pub mod json;
pub mod measure;
pub mod report;

use cod_cb::{CbKernel, ClassRegistry, ObjectClassId};
use cod_net::{LanConfig, Micros, SharedLan, SimLan, SimTransport};

/// A publisher/subscriber pair of CB kernels with an established virtual
/// channel over the given LAN configuration, ready for data-plane benchmarks.
pub struct EstablishedPair {
    /// The shared LAN.
    pub lan: SharedLan,
    /// Publisher-side kernel.
    pub publisher: CbKernel<SimTransport>,
    /// Subscriber-side kernel.
    pub subscriber: CbKernel<SimTransport>,
    /// The publishing LP.
    pub publisher_lp: cod_cb::LpId,
    /// The subscribing LP.
    pub subscriber_lp: cod_cb::LpId,
    /// The object class carried by the channel.
    pub class: ObjectClassId,
    /// Current simulated time.
    pub now: Micros,
}

impl EstablishedPair {
    /// Builds the pair and runs the initialization protocol to completion.
    pub fn new(config: LanConfig) -> EstablishedPair {
        let mut registry = ClassRegistry::new();
        let class = registry.register_object_class("Bench", &["payload"]).unwrap();
        let lan = SimLan::shared(config);
        let mut publisher = CbKernel::new(SimLan::attach(&lan, "publisher"), registry.clone());
        let mut subscriber = CbKernel::new(SimLan::attach(&lan, "subscriber"), registry);
        let publisher_lp = publisher.register_lp("publisher");
        let subscriber_lp = subscriber.register_lp("subscriber");
        publisher.publish_object_class(publisher_lp, class).unwrap();
        subscriber.subscribe_object_class(subscriber_lp, class).unwrap();
        let mut now = Micros::ZERO;
        for _ in 0..50 {
            publisher.tick(now).unwrap();
            subscriber.tick(now).unwrap();
            now += Micros::from_millis(10);
            SimLan::advance_to(&lan, now);
        }
        assert!(
            publisher.established_channel_count() >= 1,
            "bench setup failed to establish a channel"
        );
        EstablishedPair { lan, publisher, subscriber, publisher_lp, subscriber_lp, class, now }
    }

    /// Advances both kernels and the LAN by one 10 ms round.
    pub fn round(&mut self) {
        self.publisher.tick(self.now).unwrap();
        self.subscriber.tick(self.now).unwrap();
        self.now += Micros::from_millis(10);
        SimLan::advance_to(&self.lan, self.now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn established_pair_builds() {
        let pair = EstablishedPair::new(LanConfig::fast_ethernet(1));
        assert!(pair.publisher.established_channel_count() >= 1);
        assert!(pair.subscriber.established_channel_count() >= 1);
    }
}
