//! Experiment E13 — wall-clock execution: modeled versus real sessions/sec
//! under the work-stealing executor.
//!
//! Every other fleet experiment accounts throughput in *modeled* time, which
//! is what keeps their numbers deterministic. E13 is the one experiment that
//! reads the real clock: it serves the standard E9 workload under
//! [`ExecutionMode::WallClock`] at 1, 2 and 4 worker threads and reports
//! sessions per *wall* second for each, beside the modeled figure. The
//! wall rows vary run to run — that is the point of measuring them — so the
//! experiment also asserts the part that must *not* vary: the serialized
//! fleet report at every thread count is byte-identical to the modeled run's.
//! Thread scheduling decides when a shard is stepped, never what it computes,
//! and the wall timings live beside the outcome, not inside it.

use cod_fleet::{
    run_fleet, run_fleet_timed, ExecutionMode, FleetConfig, FleetReport, ShardConfig,
    WorkloadConfig,
};

use super::ExperimentCtx;
use crate::measure::measure;
use crate::report::{DerivedMetric, ExperimentResult};

/// Worker-thread counts swept by the reproduction table.
const THREADS: [usize; 3] = [1, 2, 4];

/// The E9 workload, served under an explicit execution mode.
fn config(execution: ExecutionMode) -> FleetConfig {
    FleetConfig {
        shards: 4,
        shard: ShardConfig {
            slots: 4,
            batch_frames: 8,
            pool_per_shape: 2,
            ..ShardConfig::default()
        },
        max_pending: 16,
        workload: WorkloadConfig {
            sessions: 32,
            seed: 0xC0D,
            base_frames: 24,
            mean_interarrival_ticks: 1,
        },
        execution,
        ..FleetConfig::quick(4, 0)
    }
}

/// Runs E13 and returns its result.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    // The modeled run is the determinism reference: every wall-clock run
    // below must serialize to exactly these bytes.
    let modeled = run_fleet(&config(ExecutionMode::Modeled)).expect("fleet drains");
    let reference = FleetReport::from_outcome(&modeled).to_json().to_pretty();
    let modeled_sps = modeled.sessions_per_sec();

    if ctx.tables {
        println!("\n=== E13: wall-clock execution (32 sessions, 4 shards) ===");
        println!("threads | sessions/s (wall) | wall     | report bytes");
        println!("modeled | {modeled_sps:>17.2} |      --- | reference");
    }
    let mut wall_sps = Vec::new();
    for threads in THREADS {
        let (outcome, stats) =
            run_fleet_timed(&config(ExecutionMode::WallClock { threads })).expect("fleet drains");
        let bytes = FleetReport::from_outcome(&outcome).to_json().to_pretty();
        assert_eq!(
            bytes, reference,
            "wall-clock report at {threads} threads diverged from the modeled report"
        );
        let sps = stats.sessions_per_wall_sec(outcome.completed);
        if ctx.tables {
            println!("{threads:>7} | {sps:>17.1} | {:>8.2?} | identical", stats.wall);
        }
        wall_sps.push(sps);
    }
    let scaling = wall_sps[2] / wall_sps[0].max(1e-12);
    if ctx.tables {
        println!(
            "wall scaling 1 -> 4 threads: {scaling:.2}x (real speedup needs real cores; \
             `fleet_report --wallclock` gates >= 1.5x on 4+-core runners)\n"
        );
    }

    // Headline routine: serve the fleet to drain under a 2-thread executor.
    let timed_config = config(ExecutionMode::WallClock { threads: 2 });
    let m = measure(&ctx.measure, || {
        run_fleet(&timed_config).expect("fleet drains");
    });

    ExperimentResult {
        id: "E13".into(),
        name: "wallclock".into(),
        bench_target: "wallclock".into(),
        metric: "serve a 32-session fleet to drain under a 2-thread work-stealing executor".into(),
        timing: m.stats,
        iters_per_sample: m.iters_per_sample,
        comparison: None,
        derived: vec![
            DerivedMetric::new("sessions_per_sec_modeled", "1/s", modeled_sps),
            DerivedMetric::new("sessions_per_wall_sec_1_thread", "1/s", wall_sps[0]),
            DerivedMetric::new("sessions_per_wall_sec_2_threads", "1/s", wall_sps[1]),
            DerivedMetric::new("sessions_per_wall_sec_4_threads", "1/s", wall_sps[2]),
            DerivedMetric::new("wall_scaling_1_to_4_threads", "x", scaling),
        ],
        notes: "The wall rows are real time and vary run to run; the deterministic part — the \
                serialized fleet report — is asserted byte-identical across thread counts and \
                to the modeled run, which is why wall timings are kept beside the outcome \
                rather than inside the report fingerprint. `fleet_report --quick --wallclock` \
                gates >= 1.5x wall scaling from 1 to 4 threads on 4+-core runners."
            .into(),
    }
}
