//! Experiment E5 — virtual-channel routing: co-resident versus cross-machine.
//!
//! The push/pull data plane of the Communication Backbone routes an update
//! either directly to a co-resident subscriber or over the LAN on an
//! established virtual channel. The timed routine is a full cross-machine
//! update → deliver round with a 1 KiB payload; the local fast path and the
//! payload sweep appear as derived metrics and in the reproduction table.

use cod_cb::{AttributeId, CbKernel, ClassRegistry, Value};
use cod_net::{LanConfig, Micros, SimLan};

use super::ExperimentCtx;
use crate::measure::{measure, MeasureConfig, Measurement};
use crate::report::{DerivedMetric, ExperimentResult};
use crate::EstablishedPair;

const HEADLINE_PAYLOAD: usize = 1_024;

/// Times one remote update→deliver round (two 10 ms LAN rounds) for a
/// payload of the given size.
fn measure_remote(config: &MeasureConfig, payload: usize) -> Measurement {
    let mut pair = EstablishedPair::new(LanConfig::fast_ethernet(3));
    let object = pair.publisher.register_object_instance(pair.publisher_lp, pair.class).unwrap();
    let blob = Value::Bytes(vec![0xAB; payload]);
    measure(config, || {
        pair.publisher
            .update_attribute_values(
                pair.publisher_lp,
                object,
                [(AttributeId(0), blob.clone())].into(),
                pair.now,
            )
            .unwrap();
        pair.round();
        pair.round();
        let got = pair.subscriber.reflections(pair.subscriber_lp);
        assert!(!got.is_empty());
        std::hint::black_box(got.len());
    })
}

/// Times the co-resident fast path (publisher and subscriber LP on one CB).
fn measure_local(config: &MeasureConfig, payload: usize) -> Measurement {
    let mut registry = ClassRegistry::new();
    let class = registry.register_object_class("Bench", &["payload"]).unwrap();
    let lan = SimLan::shared(LanConfig::ideal(1));
    let mut kernel = CbKernel::new(SimLan::attach(&lan, "pc"), registry);
    let producer = kernel.register_lp("producer");
    let consumer = kernel.register_lp("consumer");
    kernel.publish_object_class(producer, class).unwrap();
    kernel.subscribe_object_class(consumer, class).unwrap();
    let object = kernel.register_object_instance(producer, class).unwrap();
    let blob = Value::Bytes(vec![0xCD; payload]);
    measure(config, || {
        kernel
            .update_attribute_values(
                producer,
                object,
                [(AttributeId(0), blob.clone())].into(),
                Micros::ZERO,
            )
            .unwrap();
        let got = kernel.reflections(consumer);
        assert_eq!(got.len(), 1);
    })
}

/// Prints the payload sweep, reusing the already-measured 1 KiB medians for
/// that row instead of re-measuring them.
fn print_table(config: &MeasureConfig, headline_local_ns: f64, headline_remote_ns: f64) {
    println!("\n=== E5: virtual-channel routing, co-resident vs cross-machine ===");
    println!("payload (B) | local median | remote median | remote/local");
    for payload in [16usize, 256, HEADLINE_PAYLOAD, 4_096] {
        let (local_ns, remote_ns) = if payload == HEADLINE_PAYLOAD {
            (headline_local_ns, headline_remote_ns)
        } else {
            (
                measure_local(config, payload).stats.median,
                measure_remote(config, payload).stats.median,
            )
        };
        println!(
            "{payload:>11} | {:>12} | {:>13} | {:>11.1}x",
            crate::report::format_ns(local_ns),
            crate::report::format_ns(remote_ns),
            remote_ns / local_ns.max(1.0)
        );
    }
    println!();
}

/// Runs E5 and returns its result.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    let m = measure_remote(&ctx.measure, HEADLINE_PAYLOAD);
    let local = measure_local(&ctx.secondary_measure(), HEADLINE_PAYLOAD);
    if ctx.tables {
        print_table(&ctx.secondary_measure(), local.stats.median, m.stats.median);
    }
    let throughput_mb_s = HEADLINE_PAYLOAD as f64 * 1e9 / m.stats.median.max(1.0) / 1e6;
    ExperimentResult {
        id: "E5".into(),
        name: "routing".into(),
        bench_target: "routing".into(),
        metric: "cross-machine update->deliver round, 1 KiB payload".into(),
        timing: m.stats,
        iters_per_sample: m.iters_per_sample,
        comparison: None,
        derived: vec![
            DerivedMetric::new("local_round_median_ns", "ns", local.stats.median),
            DerivedMetric::new(
                "remote_vs_local_ratio",
                "x",
                m.stats.median / local.stats.median.max(1.0),
            ),
            DerivedMetric::new("remote_throughput", "MB/s", throughput_mb_s),
        ],
        notes: "Remote rounds include two simulated 10 ms LAN rounds of kernel work; the \
                simulated link delay itself costs no wall-clock time."
            .into(),
    }
}
