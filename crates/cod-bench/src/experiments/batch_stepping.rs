//! Experiment E11 — batched SoA stepping: scalar versus lockstep cohorts of
//! same-shape residents on one shard.
//!
//! A shard hosting N sessions of the same [`SessionShape`] can advance them
//! one at a time ([`SteppingMode::Scalar`]) or as one frame-major lockstep
//! cohort ([`SteppingMode::Batched`]) that shares per-frame work which is
//! provably identical across members — chiefly the memoized audio waveform
//! columns, which depend on source parameters and age but not on seed, gain
//! or listener. E11 sweeps the cohort size and reports the wall-clock
//! speedup of batched over scalar serving, while asserting the part that
//! must not move: every session's telemetry digest is bit-identical between
//! the two paths at every cohort size.
//!
//! The paper's cluster never did this — it had one operator per rack. The
//! experiment quantifies what the consolidated serving layer gains from the
//! paper's own determinism discipline: lockstep cohorts are only sound
//! because every module steps on a fixed shared clock.

use cod_fleet::{Priority, SessionShape, SessionSpec, Shard, ShardConfig, SteppingMode};
use cod_net::FaultPlan;
use crane_sim::{OperatorKind, SimulatorConfig};

use super::ExperimentCtx;
use crate::measure::measure;
use crate::report::{DerivedMetric, ExperimentResult};

/// Cohort sizes swept by the reproduction table.
const COHORTS: [usize; 4] = [1, 2, 4, 8];

/// Frames per session: a few full shard ticks at the default batch of 8.
const FRAMES: usize = 24;

/// One member of the same-shape cohort: the E11 shape (exam operator, two
/// 64x48 display channels, full fidelity) with a per-member seed, so members
/// share every shape field while their physics diverge.
fn member_spec(k: usize) -> SessionSpec {
    let config = SimulatorConfig {
        operator: OperatorKind::Exam,
        display_channels: 2,
        display_width: 64,
        display_height: 48,
        exam_frames: FRAMES,
        seed: 0x0E11_C0D ^ ((k as u64) * 0x9E37_79B9),
        ..SimulatorConfig::default()
    };
    SessionSpec {
        id: k as u64,
        name: format!("e11-member-{k}"),
        config,
        fault_plan: FaultPlan::none(),
        frames: FRAMES,
        priority: Priority::Training,
    }
}

/// A one-shard fleet sized for an `n`-member cohort, with a recycling pool
/// deep enough that every serve after the first reuses its racks.
fn shard(n: usize, stepping: SteppingMode) -> Shard {
    Shard::new(0, ShardConfig { slots: n, batch_frames: 8, pool_per_shape: n, stepping }, 1.0)
}

/// Serves the `n`-member cohort to drain and returns each member's telemetry
/// fingerprint in session order.
fn serve(shard: &mut Shard, n: usize) -> Vec<u64> {
    for k in 0..n {
        shard.admit(member_spec(k), 0, 0).expect("shard admits the cohort");
    }
    let mut digests = Vec::with_capacity(n);
    while shard.resident_count() > 0 {
        let (completed, _) = shard.step_batch().expect("cohort steps");
        digests.extend(completed.iter().map(|c| (c.id, c.telemetry)));
    }
    digests.sort_unstable();
    digests.into_iter().map(|(_, t)| t).collect()
}

/// Runs E11 and returns its result.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    // The cohort really is one shape: the batched path groups by this key.
    let shape = SessionShape::of(&member_spec(0).config);
    for k in 1..8 {
        assert_eq!(shape, SessionShape::of(&member_spec(k).config), "cohort must share a shape");
    }

    if ctx.tables {
        println!("\n=== E11: batched SoA stepping (same-shape cohorts, 1 shard) ===");
        println!("residents | scalar ms/serve | batched ms/serve | speedup | digests");
    }
    let secondary = ctx.secondary_measure();
    let mut speedups = Vec::new();
    for n in COHORTS {
        // Identity first: the speedup below is only worth reporting because
        // both paths retire bit-identical sessions.
        let scalar_digests = serve(&mut shard(n, SteppingMode::Scalar), n);
        let batched_digests = serve(&mut shard(n, SteppingMode::Batched), n);
        assert_eq!(
            scalar_digests, batched_digests,
            "batched stepping changed a telemetry digest at {n} residents"
        );

        // Long-lived shards, as in a real fleet: the first serve builds the
        // racks (warmup), every timed serve recycles them from the pool.
        let mut scalar_shard = shard(n, SteppingMode::Scalar);
        let scalar = measure(&secondary, || {
            serve(&mut scalar_shard, n);
        });
        let mut batched_shard = shard(n, SteppingMode::Batched);
        let batched = measure(&secondary, || {
            serve(&mut batched_shard, n);
        });
        let speedup = scalar.stats.median / batched.stats.median.max(1e-12);
        if ctx.tables {
            println!(
                "{n:>9} | {:>15.2} | {:>16.2} | {speedup:>6.2}x | identical",
                scalar.stats.median / 1e6,
                batched.stats.median / 1e6,
            );
        }
        speedups.push(speedup);
    }
    if ctx.tables {
        println!(
            "speedup at 8 residents: {:.2}x (bench_report --quick gates >= 1.5x)\n",
            speedups[3]
        );
    }

    // Headline routine: serve the 8-member cohort batched to drain.
    let mut headline_shard = shard(8, SteppingMode::Batched);
    let m = measure(&ctx.measure, || {
        serve(&mut headline_shard, 8);
    });

    ExperimentResult {
        id: "E11".into(),
        name: "batch_stepping".into(),
        bench_target: "batch_stepping".into(),
        metric: "serve an 8-resident same-shape cohort to drain with batched lockstep stepping"
            .into(),
        timing: m.stats,
        iters_per_sample: m.iters_per_sample,
        comparison: None,
        derived: vec![
            DerivedMetric::new("batched_speedup_1_resident", "x", speedups[0]),
            DerivedMetric::new("batched_speedup_2_residents", "x", speedups[1]),
            DerivedMetric::new("batched_speedup_4_residents", "x", speedups[2]),
            DerivedMetric::new("batched_speedup_8_residents", "x", speedups[3]),
        ],
        notes: "Scalar and batched serving retire bit-identical sessions (asserted per cohort \
                size on the telemetry digests); the speedup comes from sharing per-frame work \
                that is invariant across same-shape cohort members, chiefly memoized audio \
                waveform columns. The win grows with cohort size — a 1-resident cohort is the \
                overhead floor — and `bench_report --quick` gates >= 1.5x at 8 residents."
            .into(),
    }
}
