//! Experiment E8 — pipelining on the COD versus a single desktop computer.
//!
//! The reproduction table gives the analytic frame rate for 1–8 computers
//! (load-balanced placement of the paper's seven modules plus the sync
//! server); the timed routine executes real frames on the full eight-computer
//! simulator. A 120-frame idle session then yields the modeled cluster and
//! sequential frame rates whose ratio is the COD speedup — the repo's ~3.4×
//! regression anchor (see `examples/cluster_scaling`).

use cod_cluster::{balance_load, LpLoad, PipelineModel, StageCost};
use cod_net::Micros;
use crane_sim::{CraneSimulator, OperatorKind, SimulatorConfig};

use super::ExperimentCtx;
use crate::measure::measure;
use crate::report::{Comparison, DerivedMetric, ExperimentResult};

/// The ~3.4× eight-PC-COD-versus-single-PC speedup the seed measured; kept
/// as the regression anchor for perf work (ROADMAP).
pub const PAPER_SPEEDUP_ANCHOR: f64 = 3.4;

fn module_costs() -> Vec<StageCost> {
    vec![
        StageCost::new("visual-0", Micros::from_millis(60)),
        StageCost::new("visual-1", Micros::from_millis(60)),
        StageCost::new("visual-2", Micros::from_millis(60)),
        StageCost::new("sync-server", Micros(500)),
        StageCost::new("dynamics", Micros::from_millis(15)),
        StageCost::new("dashboard", Micros::from_millis(2)),
        StageCost::new("scenario", Micros::from_millis(1)),
        StageCost::new("instructor", Micros::from_millis(2)),
        StageCost::new("audio", Micros::from_millis(3)),
        StageCost::new("motion-platform", Micros::from_millis(6)),
    ]
}

fn print_table() {
    let stages = module_costs();
    let model = PipelineModel::new(stages.clone(), Micros(200));
    println!("\n=== E8: frame rate vs number of desktop computers (load-balanced) ===");
    println!("computers | frame period | fps");
    for computers in 1..=8usize {
        let loads: Vec<LpLoad> = stages.iter().map(|s| LpLoad::new(&s.name, s.cost)).collect();
        let placement = balance_load(&loads, computers);
        println!(
            "{computers:>9} | {:>12} | {:>5.1}",
            placement.makespan,
            1.0 / placement.makespan.as_secs_f64()
        );
    }
    println!(
        "pipeline speedup (8 PCs vs 1 PC): {:.2}x   end-to-end latency: {}",
        model.speedup(),
        model.pipeline_latency()
    );
    println!();
}

/// The measured cluster and sequential frame rates of a 120-frame idle
/// session on the full simulator: `(cluster_fps, sequential_fps)`.
pub fn measured_fps() -> (f64, f64) {
    let mut simulator = CraneSimulator::new(SimulatorConfig {
        operator: OperatorKind::Idle,
        exam_frames: 120,
        display_width: 64,
        display_height: 48,
        ..SimulatorConfig::default()
    })
    .expect("simulator builds");
    simulator.run().expect("session runs");
    let report = simulator.report();
    (report.cluster_fps, report.sequential_fps)
}

/// Runs E8 and returns its result.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    if ctx.tables {
        print_table();
    }

    let mut simulator = CraneSimulator::new(SimulatorConfig {
        operator: OperatorKind::Exam,
        exam_frames: 0,
        display_width: 64,
        display_height: 48,
        ..SimulatorConfig::default()
    })
    .expect("simulator builds");
    let m = measure(&ctx.measure, || {
        simulator.run_frames(1).unwrap();
    });

    let (cluster_fps, sequential_fps) = measured_fps();
    let speedup = cluster_fps / sequential_fps.max(1e-9);
    if ctx.tables {
        println!(
            "measured: cluster {cluster_fps:.1} fps vs single PC {sequential_fps:.1} fps \
             (speedup {speedup:.2}x)\n"
        );
    }
    ExperimentResult {
        id: "E8".into(),
        name: "cluster_speedup".into(),
        bench_target: "cluster_speedup".into(),
        metric: "one executive frame of the full eight-computer simulator".into(),
        timing: m.stats,
        iters_per_sample: m.iters_per_sample,
        comparison: Some(Comparison {
            quantity: "COD vs single-PC frame-rate speedup".into(),
            unit: "x".into(),
            measured: speedup,
            paper: PAPER_SPEEDUP_ANCHOR,
        }),
        derived: vec![
            DerivedMetric::new("cluster_fps", "fps", cluster_fps),
            DerivedMetric::new("sequential_fps", "fps", sequential_fps),
        ],
        notes: "Speedup comes from the executive's recorded per-computer module costs over a \
                120-frame idle session; 3.4x is the seed's regression anchor."
            .into(),
    }
}
