//! Experiment E1 — surround-view frame rate versus polygon budget.
//!
//! The headline result of the paper's §4: 16 fps at 3 235 polygons with the
//! synchronized three-channel surround view on TNT2-class hardware. The
//! reproduction table sweeps the polygon budget through the GPU cost model;
//! the timed routine renders the training world with the real software
//! rasterizer.

use crane_scene::world::TrainingWorld;
use render_sim::{Camera, GpuCostModel, Renderer, SurroundView};
use sim_math::Vec3;

use super::ExperimentCtx;
use crate::measure::measure;
use crate::report::{Comparison, DerivedMetric, ExperimentResult};

/// Polygon count the paper quotes its measured frame rate at.
pub const PAPER_POLYGONS: usize = 3_235;
/// Frame rate the paper measured at [`PAPER_POLYGONS`].
pub const PAPER_FPS: f64 = 16.0;

fn print_table() {
    println!("\n=== E1: surround-view frame rate vs polygon budget (TNT2-class model) ===");
    println!("polygons | sync fps | free-run fps | next-gen sync fps");
    let mut next_gen = SurroundView::paper_configuration();
    next_gen.set_cost_model(GpuCostModel::next_generation());
    for polygons in [500usize, 1_000, 2_000, PAPER_POLYGONS, 5_000, 8_000, 12_000, 20_000] {
        let paper = SurroundView::paper_configuration().estimate(polygons);
        let faster = next_gen.estimate(polygons);
        println!(
            "{polygons:>8} | {:>8.1} | {:>12.1} | {:>17.1}",
            paper.synchronized_fps(),
            paper.free_running_fps(),
            faster.synchronized_fps()
        );
    }
    println!();
}

/// Runs E1 and returns its result.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    if ctx.tables {
        print_table();
    }

    let world = TrainingWorld::build();
    let camera = Camera::look_at(Vec3::new(0.0, 5.0, -55.0), Vec3::new(0.0, 2.0, 40.0));
    let mut renderer = Renderer::new(120, 90);
    let m = measure(&ctx.measure, || {
        std::hint::black_box(renderer.render(&world.scene, &camera));
    });

    let headline = SurroundView::paper_configuration().estimate(PAPER_POLYGONS);
    ExperimentResult {
        id: "E1".into(),
        name: "framerate".into(),
        bench_target: "framerate".into(),
        metric: "software-rasterize one 120x90 frame of the training world".into(),
        timing: m.stats,
        iters_per_sample: m.iters_per_sample,
        comparison: Some(Comparison {
            quantity: "synchronized surround-view fps at 3235 polygons (cost model)".into(),
            unit: "fps".into(),
            measured: headline.synchronized_fps(),
            paper: PAPER_FPS,
        }),
        derived: vec![
            DerivedMetric::new("free_running_fps_model", "fps", headline.free_running_fps()),
            DerivedMetric::new("training_world_polygons", "polygons", world.polygon_count() as f64),
            DerivedMetric::new("rasterizer_fps_measured", "fps", m.median_rate()),
        ],
        notes: "Rasterizer timing is this machine's software renderer; the fps comparison \
                comes from the calibrated TNT2-class GPU cost model."
            .into(),
    }
}
