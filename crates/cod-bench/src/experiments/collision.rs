//! Experiment E3 — the multi-level collision detection of §3.6.
//!
//! The reproduction table compares exact-test counts of the bounding-sphere →
//! AABB → exact hierarchy (with the uniform-grid broad phase) against the
//! naive all-exact baseline as the obstacle count grows; the timed routine
//! sweeps the lift hook along the licensing-exam trajectory through the real
//! training world.

use crane_physics::collision::CollisionWorld;
use crane_scene::bounds::Aabb;
use crane_scene::world::TrainingWorld;
use sim_math::Vec3;

use super::ExperimentCtx;
use crate::measure::measure;
use crate::report::{DerivedMetric, ExperimentResult};

fn synthetic_world(obstacles: usize) -> CollisionWorld {
    let mut world = CollisionWorld::new();
    let per_row = (obstacles as f64).sqrt().ceil() as usize;
    for i in 0..obstacles {
        let x = (i % per_row) as f64 * 6.0;
        let z = (i / per_row) as f64 * 6.0;
        world.add_static(
            &format!("obstacle-{i}"),
            Aabb::from_center_half_extents(Vec3::new(x, 1.0, z), Vec3::new(1.0, 1.0, 1.0)),
            i % 7 == 0,
        );
    }
    world
}

/// Exact-test counts (multi-level, naive) for a probe query against a
/// synthetic world of the given size.
fn exact_test_counts(obstacles: usize) -> (u64, u64) {
    let mut world = synthetic_world(obstacles);
    world.build_grid(12.0);
    world.reset_stats();
    let probe = Vec3::new(30.0, 1.0, 30.0);
    world.query_sphere(probe, 1.0);
    let hierarchical = world.stats().exact_tests;
    world.reset_stats();
    world.query_sphere_naive(probe, 1.0);
    let naive = world.stats().exact_tests;
    (hierarchical, naive)
}

fn print_table() {
    println!("\n=== E3: multi-level collision detection vs naive baseline ===");
    println!("obstacles | exact tests (multi-level) | exact tests (naive) | reduction");
    for obstacles in [10usize, 100, 500, 2_000, 5_000] {
        let (hierarchical, naive) = exact_test_counts(obstacles);
        println!(
            "{obstacles:>9} | {hierarchical:>25} | {naive:>19} | {:>8.1}x",
            naive as f64 / hierarchical.max(1) as f64
        );
    }
    println!();
}

/// Runs E3 and returns its result.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    if ctx.tables {
        print_table();
    }

    let training = TrainingWorld::build();
    let mut world = CollisionWorld::from_obstacles(&training.obstacles);
    world.build_grid(12.0);
    let path: Vec<Vec3> = training.course.trajectory.clone();
    let m = measure(&ctx.measure, || {
        let mut contacts = 0;
        for p in &path {
            contacts += world.query_sphere(*p + Vec3::new(0.0, 2.0, 0.0), 0.8).len();
        }
        std::hint::black_box(contacts);
    });

    let (hierarchical, naive) = exact_test_counts(2_000);
    ExperimentResult {
        id: "E3".into(),
        name: "collision".into(),
        bench_target: "collision".into(),
        metric: "hook sweep along the exam trajectory (multi-level queries)".into(),
        timing: m.stats,
        iters_per_sample: m.iters_per_sample,
        comparison: None,
        derived: vec![
            DerivedMetric::new(
                "exact_test_reduction_2000_obstacles",
                "x",
                naive as f64 / hierarchical.max(1) as f64,
            ),
            DerivedMetric::new("trajectory_waypoints", "points", path.len() as f64),
        ],
        notes: "The paper describes the hierarchy qualitatively; the derived reduction factor \
                is the quantity its §3.6 argues for."
            .into(),
    }
}
