//! Experiment E6 — the initialization protocol of the Communication Backbone.
//!
//! The reproduction table shows how long (in simulated time) establishing
//! virtual channels takes as the subscriber count, the SUBSCRIPTION broadcast
//! interval and the packet loss change; the timed routine runs the whole
//! discovery phase for eight subscribing computers.

use cod_cb::{CbConfig, CbKernel, ClassRegistry};
use cod_net::{LanConfig, Micros, SimLan};

use super::ExperimentCtx;
use crate::measure::measure;
use crate::report::{DerivedMetric, ExperimentResult};

/// Runs discovery for `subscribers` computers and returns
/// `(rounds, mean setup latency in simulated time)`.
fn establish(subscribers: usize, broadcast_interval: Micros, loss: f64) -> (usize, Micros) {
    let mut registry = ClassRegistry::new();
    let class = registry.register_object_class("CraneState", &["x"]).unwrap();
    let lan = SimLan::shared(LanConfig::fast_ethernet(17).with_loss(loss));
    let config =
        CbConfig { subscription_broadcast_interval: broadcast_interval, ..CbConfig::default() };

    let mut publisher =
        CbKernel::with_config(SimLan::attach(&lan, "publisher"), registry.clone(), config);
    let p = publisher.register_lp("dynamics");
    publisher.publish_object_class(p, class).unwrap();

    let mut subs: Vec<_> = (0..subscribers)
        .map(|i| {
            let mut kernel = CbKernel::with_config(
                SimLan::attach(&lan, &format!("sub-{i}")),
                registry.clone(),
                config,
            );
            let lp = kernel.register_lp(&format!("sub-{i}"));
            kernel.subscribe_object_class(lp, class).unwrap();
            kernel
        })
        .collect();

    let mut now = Micros::ZERO;
    let mut rounds = 0;
    while publisher.established_channel_count() < subscribers && rounds < 2_000 {
        publisher.tick(now).unwrap();
        for s in subs.iter_mut() {
            s.tick(now).unwrap();
        }
        now += Micros::from_millis(5);
        SimLan::advance_to(&lan, now);
        rounds += 1;
    }
    let latencies: Vec<Micros> =
        subs.iter().filter_map(|s| s.stats().mean_setup_latency()).collect();
    let mean = if latencies.is_empty() {
        Micros::ZERO
    } else {
        Micros(latencies.iter().map(|m| m.0).sum::<u64>() / latencies.len() as u64)
    };
    (rounds, mean)
}

fn print_table() {
    println!("\n=== E6: initialization protocol convergence ===");
    println!("subscribers | broadcast interval | loss | mean setup latency");
    for subscribers in [1usize, 4, 16, 48] {
        let (_, latency) = establish(subscribers, Micros::from_millis(50), 0.0);
        println!("{subscribers:>11} | {:>18} | {:>4} | {}", "50 ms", "0%", latency);
    }
    for interval_ms in [10u64, 50, 200] {
        let (_, latency) = establish(8, Micros::from_millis(interval_ms), 0.0);
        println!("{:>11} | {:>15} ms | {:>4} | {}", 8, interval_ms, "0%", latency);
    }
    for loss in [0.0f64, 0.1, 0.3] {
        let (_, latency) = establish(8, Micros::from_millis(50), loss);
        println!("{:>11} | {:>18} | {:>3.0}% | {}", 8, "50 ms", loss * 100.0, latency);
    }
    println!();
}

/// Runs E6 and returns its result.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    if ctx.tables {
        print_table();
    }

    let m = measure(&ctx.measure, || {
        std::hint::black_box(establish(8, Micros::from_millis(50), 0.0));
    });

    let (rounds, latency) = establish(8, Micros::from_millis(50), 0.0);
    ExperimentResult {
        id: "E6".into(),
        name: "init_protocol".into(),
        bench_target: "init_protocol".into(),
        metric: "full discovery phase, 8 subscribing computers (wall clock)".into(),
        timing: m.stats,
        iters_per_sample: m.iters_per_sample,
        comparison: None,
        derived: vec![
            DerivedMetric::new("mean_setup_latency_sim", "us", latency.0 as f64),
            DerivedMetric::new("convergence_rounds_5ms", "rounds", rounds as f64),
        ],
        notes: "Setup latency is simulated LAN time; the paper only says initialization \
                completes within seconds of power-on."
            .into(),
    }
}
