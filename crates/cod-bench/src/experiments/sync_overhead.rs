//! Experiment E7 — the cost of the frame-synchronization server.
//!
//! The paper attributes the drop to 16 fps to "the overhead of the
//! synchronization among the three graphical computers". The reproduction
//! table quantifies the swap-lock barrier for 1–6 display channels through
//! the analytic model; the timed routine runs the real barrier protocol over
//! the Communication Backbone for three channels.

use cod_cb::{CbApi, CbError, ClassRegistry};
use cod_cluster::{
    Cluster, ClusterConfig, FrameSyncClient, FrameSyncFom, FrameSyncServer, LogicalProcess,
    SyncBarrierModel,
};
use cod_net::Micros;

use super::ExperimentCtx;
use crate::measure::measure;
use crate::report::{Comparison, DerivedMetric, ExperimentResult};

struct BenchDisplay {
    client: FrameSyncClient,
}

impl LogicalProcess for BenchDisplay {
    fn name(&self) -> &str {
        "bench-display"
    }
    fn init(&mut self, cb: &mut dyn CbApi) -> Result<(), CbError> {
        self.client.init(cb)
    }
    fn step(&mut self, cb: &mut dyn CbApi, _dt: f64) -> Result<(), CbError> {
        if self.client.is_waiting() {
            self.client.poll_release(cb);
        } else {
            self.client.report_ready(cb)?;
        }
        Ok(())
    }
}

fn barrier_model() -> SyncBarrierModel {
    SyncBarrierModel { round_trip: Micros::from_millis(1), server_processing: Micros(500) }
}

/// Per-channel render times for the paper's scene: every channel renders the
/// same 3 235-polygon view, with a small spread from load.
fn render_times(channels: usize) -> Vec<Micros> {
    (0..channels).map(|i| Micros::from_millis(58 + i as u64)).collect()
}

fn print_table() {
    println!("\n=== E7: swap-lock overhead vs number of display channels ===");
    println!("channels | free-run fps | synchronized fps | overhead %");
    let model = barrier_model();
    for channels in 1..=6usize {
        let times = render_times(channels);
        let free = SyncBarrierModel::unsynchronized_period(&times);
        let sync = model.synchronized_period(&times);
        println!(
            "{channels:>8} | {:>12.1} | {:>16.1} | {:>9.1}",
            1.0 / free.as_secs_f64(),
            1.0 / sync.as_secs_f64(),
            model.overhead_fraction(&times) * 100.0
        );
    }
    println!();
}

/// Builds a cluster running the barrier protocol for `channels` displays.
fn build_cluster(channels: usize) -> Cluster {
    let mut fom = ClassRegistry::new();
    let sync_fom = FrameSyncFom::register(&mut fom).unwrap();
    let mut cluster = Cluster::new(ClusterConfig::default(), fom);
    for i in 0..channels {
        let pc = cluster.add_computer(&format!("display-{i}"));
        cluster
            .add_lp(pc, Box::new(BenchDisplay { client: FrameSyncClient::new(sync_fom, i as u32) }))
            .unwrap();
    }
    let server_pc = cluster.add_computer("sync-server");
    cluster.add_lp(server_pc, Box::new(FrameSyncServer::new(sync_fom, channels))).unwrap();
    cluster.initialize().unwrap();
    cluster
}

/// Runs E7 and returns its result.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    if ctx.tables {
        print_table();
    }

    let channels = 3;
    let mut cluster = build_cluster(channels);
    let m = measure(&ctx.measure, || {
        cluster.run_frames(10).unwrap();
    });

    let model = barrier_model();
    let times = render_times(channels);
    let sync_fps = 1.0 / model.synchronized_period(&times).as_secs_f64();
    ExperimentResult {
        id: "E7".into(),
        name: "sync_overhead".into(),
        bench_target: "sync_overhead".into(),
        metric: "10 swap-lock barrier rounds over the CB, 3 display channels".into(),
        timing: m.stats,
        iters_per_sample: m.iters_per_sample,
        comparison: Some(Comparison {
            quantity: "synchronized fps with 3 channels at ~60 ms render (barrier model)".into(),
            unit: "fps".into(),
            measured: sync_fps,
            paper: 16.0,
        }),
        derived: vec![DerivedMetric::new(
            "swap_lock_overhead_3_channels",
            "%",
            model.overhead_fraction(&times) * 100.0,
        )],
        notes: "The paper's 16 fps already includes this overhead; the model isolates it.".into(),
    }
}
