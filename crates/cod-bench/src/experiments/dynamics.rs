//! Experiment E2 — per-frame cost of the dynamics module and the inertia
//! oscillation of the lift hook.
//!
//! The reproduction table shows the swing-decay series after the boom stops
//! for several cargo masses; the timed routine is one full dynamics frame
//! (vehicle, crane rig and cable pendulum at 60 Hz).

use crane_physics::terrain::FlatTerrain;
use crane_physics::{
    CablePendulum, CraneControls, CraneRig, CraneVehicle, DriveControls, VehicleParams,
};
use sim_math::Vec3;

use super::ExperimentCtx;
use crate::measure::measure;
use crate::report::{DerivedMetric, ExperimentResult};

const DT: f64 = 1.0 / 60.0;

fn print_table() {
    println!("\n=== E2: inertia oscillation of the lift hook (decay after the boom stops) ===");
    println!("cargo (t) | peak swing (m) | swing after 5 s | swing after 15 s | at rest");
    for cargo_tonnes in [0.5f64, 2.0, 5.0, 20.0] {
        let mut suspension = Vec3::new(0.0, 15.0, 0.0);
        let mut pendulum = CablePendulum::new(suspension, 6.0, 120.0);
        pendulum.attach_cargo(cargo_tonnes * 1_000.0);
        // Slew the boom tip sideways for 1.5 s, then stop.
        let mut peak: f64 = 0.0;
        for i in 0..90 {
            suspension = Vec3::new(0.06 * i as f64, 15.0, 0.0);
            pendulum.step(suspension, 6.0, DT);
            peak = peak.max(pendulum.swing_amplitude(suspension));
        }
        let mut after_5 = 0.0;
        for i in 0..(15 * 60) {
            pendulum.step(suspension, 6.0, DT);
            if i == 5 * 60 {
                after_5 = pendulum.swing_amplitude(suspension);
            }
        }
        let after_15 = pendulum.swing_amplitude(suspension);
        println!(
            "{cargo_tonnes:>9.1} | {peak:>14.2} | {after_5:>15.3} | {after_15:>16.3} | {}",
            pendulum.is_at_rest(suspension)
        );
    }
    println!();
}

/// Runs E2 and returns its result.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    if ctx.tables {
        print_table();
    }

    let terrain = FlatTerrain::default();
    let mut vehicle = CraneVehicle::new(VehicleParams::default(), Vec3::ZERO, 0.0);
    let mut rig = CraneRig::default();
    let mut pendulum = CablePendulum::new(Vec3::new(0.0, 15.0, 0.0), 6.0, 120.0);
    pendulum.attach_cargo(5_000.0);
    let m = measure(&ctx.measure, || {
        vehicle.step(
            DriveControls { throttle: 0.7, steering: 0.2, ..Default::default() },
            &terrain,
            DT,
        );
        rig.step(CraneControls { slew: 0.4, luff: 0.2, ..Default::default() }, DT);
        let tip = rig.boom_tip_world(&vehicle.chassis_transform());
        std::hint::black_box(pendulum.step(tip, 6.0, DT));
    });

    // How many whole dynamics frames fit into a 60 Hz visual frame budget.
    let frames_per_budget = (1e9 / 60.0) / m.stats.median.max(1.0);
    ExperimentResult {
        id: "E2".into(),
        name: "dynamics".into(),
        bench_target: "dynamics".into(),
        metric: "one 60 Hz dynamics frame (vehicle + rig + 5 t cable pendulum)".into(),
        timing: m.stats,
        iters_per_sample: m.iters_per_sample,
        comparison: None,
        derived: vec![
            DerivedMetric::new("dynamics_frames_per_60hz_budget", "frames", frames_per_budget),
            DerivedMetric::new("dynamics_frame_median_us", "us", m.stats.median / 1_000.0),
        ],
        notes: "The paper gives no per-frame number for the dynamics PC; the derived budget \
                ratio shows how far the module is from saturating one 60 Hz frame here."
            .into(),
    }
}
