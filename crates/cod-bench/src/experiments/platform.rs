//! Experiment E4 — the motion-platform controller.
//!
//! The reproduction table shows how pose interpolation keeps the platform
//! smooth across visual frame rates (16–60 Hz); the timed routine is one
//! visual frame of the full controller (cue push + washout + interpolation +
//! servo steps), with the Stewart-platform inverse kinematics reported as a
//! derived metric.

use motion_platform::{
    inverse_kinematics, MotionController, MotionCue, PlatformPose, StewartGeometry,
};
use sim_math::Vec3;

use super::ExperimentCtx;
use crate::measure::measure;
use crate::report::{DerivedMetric, ExperimentResult};

fn print_table() {
    println!("\n=== E4: pose interpolation synchronized with the visual frame rate ===");
    println!("visual fps | servo rate | max pose step per servo tick (m + rad)");
    for fps in [16.0f64, 30.0, 60.0] {
        let mut controller = MotionController::new(fps, 7);
        let servo_hz = 192.0;
        let mut previous = PlatformPose::neutral();
        let mut max_step: f64 = 0.0;
        for frame in 0..64 {
            controller.push_cue(MotionCue {
                acceleration: Vec3::new(0.0, 0.0, if frame % 16 < 8 { 2.5 } else { -2.5 }),
                engine_intensity: 0.6,
                ..Default::default()
            });
            for _ in 0..(servo_hz / fps) as usize {
                let (pose, _) = controller.servo_step(1.0 / servo_hz);
                max_step = max_step.max(pose.distance(&previous));
                previous = pose;
            }
        }
        println!("{fps:>10.0} | {servo_hz:>10.0} | {max_step:>10.4}");
    }
    println!();
}

/// Runs E4 and returns its result.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    if ctx.tables {
        print_table();
    }

    let mut controller = MotionController::new(16.0, 3);
    let m = measure(&ctx.measure, || {
        controller.push_cue(MotionCue {
            acceleration: Vec3::new(0.5, 0.0, 1.5),
            pitch: 0.02,
            roll: -0.01,
            yaw_rate: 0.1,
            engine_intensity: 0.7,
        });
        for _ in 0..12 {
            std::hint::black_box(controller.servo_step(1.0 / (16.0 * 12.0)));
        }
    });

    let geometry = StewartGeometry::training_platform();
    let pose = PlatformPose::from_euler(Vec3::new(0.05, 0.02, -0.04), 0.02, 0.06, -0.03);
    let ik = measure(&ctx.secondary_measure(), || {
        std::hint::black_box(inverse_kinematics(&geometry, &pose));
    });

    ExperimentResult {
        id: "E4".into(),
        name: "platform".into(),
        bench_target: "platform".into(),
        metric: "one 16 Hz visual frame of the motion controller (12 servo steps)".into(),
        timing: m.stats,
        iters_per_sample: m.iters_per_sample,
        comparison: None,
        derived: vec![
            DerivedMetric::new("inverse_kinematics_median_ns", "ns", ik.stats.median),
            DerivedMetric::new("controller_frame_median_us", "us", m.stats.median / 1_000.0),
        ],
        notes: "Interpolation quality (the table) is the paper's claim; timing shows the \
                controller is far below the 6 ms module budget used for placement."
            .into(),
    }
}
