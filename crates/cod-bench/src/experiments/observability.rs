//! Experiment E14 — observability overhead: what arming the deterministic
//! trace sink costs on the batched serving path.
//!
//! The `cod-trace` hooks ride the fleet's hottest loop — every batched cohort
//! step bumps frame and memo counters, every tick records a makespan
//! histogram sample, every admission decision appends an event. The sinks
//! are only acceptable if a traced drain stays within a few percent of an
//! untraced one; otherwise nobody arms them in production and the
//! observability layer observes nothing. E14 times the same burst drain with
//! `ObsConfig::Disabled` (the default null-pointer path) and with
//! `ObsConfig::Deterministic` (every hook live), and derives the relative
//! overhead that `bench_report` gates at ≤ 5%.

use cod_fleet::{
    run_fleet, run_fleet_traced, ExecutionMode, FleetConfig, FleetReport, ObsConfig,
    PlacementPolicy, ShardConfig, WorkloadConfig,
};

use super::ExperimentCtx;
use crate::measure::measure;
use crate::report::{DerivedMetric, ExperimentResult};

/// The ceiling `bench_report` enforces on the traced-over-untraced slowdown.
pub const TRACING_OVERHEAD_CEILING_PCT: f64 = 5.0;

/// The batched serving path under test: a burst of same-epoch arrivals on a
/// small homogeneous rack, so shards step multi-member cohorts through
/// `step_frames_batch_traced` every tick — the loop the hooks ride.
fn serving_config(obs: ObsConfig) -> FleetConfig {
    FleetConfig {
        shards: 2,
        shard: ShardConfig {
            slots: 4,
            batch_frames: 8,
            pool_per_shape: 1,
            ..ShardConfig::default()
        },
        shard_speeds: Vec::new(),
        placement: PlacementPolicy::SpeedWeighted,
        preemption: false,
        migration: false,
        tiering: false,
        max_pending: 8,
        workload: WorkloadConfig {
            sessions: 16,
            seed: 0xC0D,
            base_frames: 32,
            mean_interarrival_ticks: 0,
        },
        execution: ExecutionMode::Modeled,
        obs,
    }
}

/// Runs E14 and returns its result.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    // Sanity first: the hooks observe the drain, they must never steer it —
    // the fingerprinted report has to come out byte-identical either way.
    let untraced_outcome = run_fleet(&serving_config(ObsConfig::Disabled)).expect("fleet drains");
    let (traced_outcome, _, artifacts) =
        run_fleet_traced(&serving_config(ObsConfig::Deterministic)).expect("fleet drains");
    assert_eq!(
        FleetReport::from_outcome(&untraced_outcome).to_json().to_pretty(),
        FleetReport::from_outcome(&traced_outcome).to_json().to_pretty(),
        "tracing must not change a byte of FLEET_cod.json"
    );
    let det = artifacts.det.expect("Deterministic arms the det sink");

    // Both sides get the full measurement budget: the gate is a ratio of two
    // medians, so the halves must be equally trustworthy.
    let untraced_config = serving_config(ObsConfig::Disabled);
    let untraced = measure(&ctx.measure, || {
        run_fleet(&untraced_config).expect("fleet drains");
    });
    let traced_config = serving_config(ObsConfig::Deterministic);
    let traced = measure(&ctx.measure, || {
        run_fleet_traced(&traced_config).expect("fleet drains");
    });

    let overhead_pct =
        (traced.stats.median - untraced.stats.median) / untraced.stats.median.max(1e-12) * 100.0;

    if ctx.tables {
        println!("\n=== E14: observability overhead (16-session burst, batched, modeled) ===");
        println!("sink          | median/drain | events recorded");
        println!(
            "disabled      | {:>12} | {:>15}",
            crate::report::format_ns(untraced.stats.median),
            0
        );
        println!(
            "deterministic | {:>12} | {:>15}",
            crate::report::format_ns(traced.stats.median),
            det.events().len()
        );
        println!(
            "overhead {overhead_pct:+.2}% (ceiling {TRACING_OVERHEAD_CEILING_PCT:.1}%); \
             {} frames / {} cohorts counted, fingerprint {:#018x}\n",
            det.counter("frames_stepped"),
            det.counter("cohorts_stepped"),
            det.fingerprint(),
        );
    }

    ExperimentResult {
        id: "E14".into(),
        name: "observability".into(),
        bench_target: "observability".into(),
        metric: "drain a 16-session batched burst fleet with the deterministic sink armed".into(),
        timing: traced.stats,
        iters_per_sample: traced.iters_per_sample,
        comparison: None,
        derived: vec![
            DerivedMetric::new("tracing_overhead_pct", "%", overhead_pct),
            DerivedMetric::new("tracing_overhead_ceiling_pct", "%", TRACING_OVERHEAD_CEILING_PCT),
            DerivedMetric::new("untraced_median_ns", "ns", untraced.stats.median),
            DerivedMetric::new("traced_median_ns", "ns", traced.stats.median),
            DerivedMetric::new("events_recorded", "events", det.events().len() as f64),
            DerivedMetric::new("frames_counted", "frames", det.counter("frames_stepped") as f64),
        ],
        notes: "Overhead is the ratio of traced-over-untraced median drain times on the batched \
                serving path; bench_report gates it at the pinned ceiling. The outcome equality \
                asserted inside the experiment plus trace_report's byte-identity gates pin the \
                correctness side."
            .into(),
    }
}
