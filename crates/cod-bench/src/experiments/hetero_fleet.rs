//! Experiment E10 — heterogeneous fleet serving: speed-weighted placement
//! versus residency-only placement on unequal machines.
//!
//! The paper's premise is squeezing a simulator out of *commodity* desktop
//! PCs, and commodity boxes are never equal. E10 serves the same seeded
//! workload on a 1×2.0-speed + 3×0.5-speed fleet three ways: counting
//! residents (the policy a homogeneous fleet gets away with), weighing
//! shards by their speed-scaled modeled backlog, and the fully
//! heterogeneity-aware stack (speed weighting plus priority preemption plus
//! live migration). Throughput is accounted in modeled time, so the ratios
//! are deterministic; `fleet_report --quick` gates speed-weighted >
//! residency-only on every CI run.

use cod_fleet::{
    run_fleet, ExecutionMode, FleetConfig, PlacementPolicy, ShardConfig, WorkloadConfig,
};

use super::ExperimentCtx;
use crate::measure::measure;
use crate::report::{DerivedMetric, ExperimentResult};

/// The heterogeneous rack every E10 row serves: one double-speed PC plus
/// three half-speed PCs.
const SPEEDS: [f64; 4] = [2.0, 0.5, 0.5, 0.5];

fn config(sessions: usize, placement: PlacementPolicy, aware: bool) -> FleetConfig {
    FleetConfig {
        shards: SPEEDS.len(),
        shard: ShardConfig {
            slots: 4,
            batch_frames: 8,
            pool_per_shape: 2,
            ..ShardConfig::default()
        },
        shard_speeds: SPEEDS.to_vec(),
        placement,
        preemption: aware,
        migration: aware,
        tiering: false,
        max_pending: 16,
        workload: WorkloadConfig {
            sessions,
            seed: 0xC0D,
            base_frames: 24,
            mean_interarrival_ticks: 1,
        },
        execution: ExecutionMode::Modeled,
        obs: Default::default(),
    }
}

/// Modeled sessions/sec on the standard E10 workload under one policy mix.
pub fn sessions_per_sec(placement: PlacementPolicy, aware: bool) -> f64 {
    run_fleet(&config(32, placement, aware)).expect("fleet drains").sessions_per_sec()
}

/// Runs E10 and returns its result.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    let residency = sessions_per_sec(PlacementPolicy::LeastResident, false);
    let weighted = sessions_per_sec(PlacementPolicy::SpeedWeighted, false);
    let aware = sessions_per_sec(PlacementPolicy::SpeedWeighted, true);
    let placement_gain = weighted / residency.max(1e-12);
    let aware_gain = aware / residency.max(1e-12);

    if ctx.tables {
        println!(
            "\n=== E10: heterogeneous fleet (1x2.0 + 3x0.5 shards, 32 sessions, modeled time) ==="
        );
        println!("policy                                   | sessions/s | vs residency");
        println!("residency-only placement                 | {residency:>10.2} |   1.00x");
        println!(
            "speed-weighted placement                 | {weighted:>10.2} | {placement_gain:>6.2}x"
        );
        println!("speed-weighted + preemption + migration  | {aware:>10.2} | {aware_gain:>6.2}x");
        println!();
    }

    // Headline routine: drain a small heterogeneity-aware fleet.
    let timed_config = config(8, PlacementPolicy::SpeedWeighted, true);
    let m = measure(&ctx.measure, || {
        run_fleet(&timed_config).expect("fleet drains");
    });

    if ctx.tables {
        println!(
            "measured: residency-only {residency:.2} vs speed-weighted {weighted:.2} sessions/s \
             ({placement_gain:.2}x; fully aware {aware_gain:.2}x)\n"
        );
    }
    ExperimentResult {
        id: "E10".into(),
        name: "hetero_fleet".into(),
        bench_target: "hetero_fleet".into(),
        metric: "serve an 8-session fleet to drain on 1 fast + 3 slow shards".into(),
        timing: m.stats,
        iters_per_sample: m.iters_per_sample,
        comparison: None,
        derived: vec![
            DerivedMetric::new("sessions_per_sec_residency_only", "1/s", residency),
            DerivedMetric::new("sessions_per_sec_speed_weighted", "1/s", weighted),
            DerivedMetric::new("sessions_per_sec_fully_aware", "1/s", aware),
            DerivedMetric::new("speed_weighted_gain", "x", placement_gain),
            DerivedMetric::new("fully_aware_gain", "x", aware_gain),
        ],
        notes: "Throughput is modeled, so the policy gains are deterministic; `fleet_report \
                --quick` gates speed-weighted > residency-only on the same 1x2.0 + 3x0.5 rack \
                and interactive p95 <= batch p95 under preemption."
            .into(),
    }
}
