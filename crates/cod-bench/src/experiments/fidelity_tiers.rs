//! Experiment E12 — fidelity tiers: what the `Coarse` backend costs in
//! score accuracy and what it buys in serving capacity.
//!
//! The `SimBackend` split lets a session run on a decimated rack (one
//! display channel, the integrator stepped at an eighth of the frame rate)
//! that is an order of magnitude cheaper in modeled cost. That is only
//! useful if the cheap tier stays *score-compatible*: a Batch session
//! graded on the Coarse backend must reach (close to) the verdict the full
//! rack would have reached. E12 measures both sides of the bargain — the
//! per-spec final-score drift between tiers over a seeded sample of session
//! specs, and the throughput multiplier a bursty fleet gets from serving
//! its coarse-eligible classes on the cheap tier with live retiering.

use cod_fleet::{
    generate, run_fleet, ExecutionMode, FleetConfig, PlacementPolicy, ShardConfig, WorkloadConfig,
};
use crane_sim::{CraneSimulator, FidelityTier, SCORE_DRIFT_TOLERANCE};

use super::ExperimentCtx;
use crate::measure::measure;
use crate::report::{DerivedMetric, ExperimentResult};

/// Session specs sampled for the drift table.
const DRIFT_SPECS: usize = 6;
/// Frames per sampled drift session — long enough for reckless operators to
/// rack up scored collisions, so the tiers have something to disagree about.
const DRIFT_FRAMES: usize = 400;

/// The tiered-capacity pair: a burst on a small homogeneous rack, with the
/// queue bounded so it drains to calm while a Training session is still
/// resident (the configuration the testkit's tier invariants also pin).
fn burst_config(tiering: bool) -> FleetConfig {
    FleetConfig {
        shards: 2,
        shard: ShardConfig {
            slots: 2,
            batch_frames: 8,
            pool_per_shape: 1,
            ..ShardConfig::default()
        },
        shard_speeds: Vec::new(),
        placement: PlacementPolicy::SpeedWeighted,
        preemption: false,
        migration: false,
        tiering,
        max_pending: 4,
        workload: WorkloadConfig {
            sessions: 16,
            seed: 0xC0D,
            base_frames: 32,
            mean_interarrival_ticks: 0,
        },
        execution: ExecutionMode::Modeled,
        obs: Default::default(),
    }
}

/// Runs one sampled spec to completion on one tier; returns the final score
/// and the modeled sequential cost per session frame in microseconds.
fn run_tier(config: &crane_sim::SimulatorConfig, tier: FidelityTier) -> (f64, f64) {
    let mut tiered = config.clone();
    tiered.tier = tier;
    let mut sim = CraneSimulator::new(tiered).expect("simulator builds");
    sim.run_frames(DRIFT_FRAMES).expect("session runs");
    (sim.report().score, sim.session_cost_hint().0 as f64)
}

/// Runs E12 and returns its result.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    // Side one: per-spec score drift and per-frame cost across the tiers.
    let sample = generate(&WorkloadConfig {
        sessions: DRIFT_SPECS,
        seed: 0xC0D,
        base_frames: DRIFT_FRAMES,
        mean_interarrival_ticks: 1,
    });
    if ctx.tables {
        println!(
            "\n=== E12: fidelity tiers ({DRIFT_SPECS} specs x {DRIFT_FRAMES} frames, modeled \
             time) ==="
        );
        println!("session spec                             | full  | coarse| drift | cost x");
    }
    let mut max_drift: f64 = 0.0;
    let mut cost_multipliers = Vec::new();
    for arrival in &sample {
        let (full_score, full_cost) = run_tier(&arrival.spec.config, FidelityTier::Full);
        let (coarse_score, coarse_cost) = run_tier(&arrival.spec.config, FidelityTier::Coarse);
        let drift = (full_score - coarse_score).abs();
        let multiplier = full_cost / coarse_cost.max(1.0);
        max_drift = max_drift.max(drift);
        cost_multipliers.push(multiplier);
        if ctx.tables {
            println!(
                "{:<40} | {full_score:>5.1} | {coarse_score:>5.1} | {drift:>5.1} | \
                 {multiplier:>5.1}x",
                arrival.spec.name
            );
        }
    }
    let mean_cost_multiplier =
        cost_multipliers.iter().sum::<f64>() / cost_multipliers.len().max(1) as f64;

    // Side two: the capacity multiplier live tiering buys on a burst. The
    // same sessions complete in the same ticks on both sides (tick dynamics
    // are tier-independent); only the modeled serving time shrinks.
    let all_full = run_fleet(&burst_config(false)).expect("fleet drains");
    let tiered = run_fleet(&burst_config(true)).expect("fleet drains");
    assert_eq!(all_full.completed, tiered.completed, "tiering must not change completions");
    let capacity_multiplier = tiered.sessions_per_sec() / all_full.sessions_per_sec().max(1e-12);

    if ctx.tables {
        println!(
            "max drift {max_drift:.1} points (tolerance {SCORE_DRIFT_TOLERANCE}); mean \
             sequential cost multiplier {mean_cost_multiplier:.1}x"
        );
        println!(
            "burst capacity: tiered {:.2} vs all-Full {:.2} sessions/s ({capacity_multiplier:.2}x, \
             {} demotions / {} promotions)\n",
            tiered.sessions_per_sec(),
            all_full.sessions_per_sec(),
            tiered.demoted,
            tiered.promoted,
        );
    }

    // Headline routine: drain the tiered burst fleet, live retiering included.
    let timed_config = burst_config(true);
    let m = measure(&ctx.measure, || {
        run_fleet(&timed_config).expect("fleet drains");
    });

    ExperimentResult {
        id: "E12".into(),
        name: "fidelity_tiers".into(),
        bench_target: "fidelity_tiers".into(),
        metric: "drain a 16-session burst fleet with live fidelity retiering".into(),
        timing: m.stats,
        iters_per_sample: m.iters_per_sample,
        comparison: None,
        derived: vec![
            DerivedMetric::new("max_score_drift", "points", max_drift),
            DerivedMetric::new("score_drift_tolerance", "points", SCORE_DRIFT_TOLERANCE),
            DerivedMetric::new("mean_cost_multiplier", "x", mean_cost_multiplier),
            DerivedMetric::new("capacity_multiplier", "x", capacity_multiplier),
            DerivedMetric::new("sessions_per_sec_all_full", "1/s", all_full.sessions_per_sec()),
            DerivedMetric::new("sessions_per_sec_tiered", "1/s", tiered.sessions_per_sec()),
        ],
        notes: "Scores and costs are modeled, so both sides are deterministic; bench_report \
                gates max_score_drift <= the pinned tolerance, and `fleet_report --quick` \
                gates the fleet-scale capacity multiplier plus at least one live promotion \
                and demotion per tiered run."
            .into(),
    }
}
