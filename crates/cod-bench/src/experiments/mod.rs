//! The experiments of `EXPERIMENTS.md`, as library code.
//!
//! Each submodule owns one experiment: it prints the experiment's
//! reproduction table (the analytic series the paper's figures correspond
//! to), times the experiment's headline routine through
//! [`crate::measure::measure`], and returns an
//! [`crate::report::ExperimentResult`]. The `benches/` targets and the
//! `bench_report` runner binary are both thin wrappers over these functions,
//! so `cargo bench` output and `BENCH_cod.json` can never disagree.

pub mod batch_stepping;
pub mod cluster_speedup;
pub mod collision;
pub mod dynamics;
pub mod fidelity_tiers;
pub mod fleet;
pub mod framerate;
pub mod hetero_fleet;
pub mod init_protocol;
pub mod observability;
pub mod platform;
pub mod routing;
pub mod sync_overhead;
pub mod wallclock;

use crate::measure::MeasureConfig;
use crate::report::ExperimentResult;

/// How an experiment run should behave.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentCtx {
    /// Measurement budget for the timed routines.
    pub measure: MeasureConfig,
    /// Whether to print the reproduction tables while running.
    pub tables: bool,
}

impl ExperimentCtx {
    /// Environment-derived defaults (`COD_BENCH_QUICK` selects the reduced
    /// budget), tables on.
    pub fn from_env() -> ExperimentCtx {
        ExperimentCtx { measure: MeasureConfig::from_env(), tables: true }
    }

    /// A context with the reduced `--quick` budget.
    pub fn quick() -> ExperimentCtx {
        ExperimentCtx { measure: MeasureConfig::quick(), tables: true }
    }

    /// A trimmed copy of the measurement budget for secondary measurements
    /// (reproduction-table sweeps, derived metrics) so they stay cheap
    /// relative to the headline routine.
    pub fn secondary_measure(&self) -> MeasureConfig {
        MeasureConfig {
            samples: (self.measure.samples / 3).max(3),
            bootstrap_resamples: (self.measure.bootstrap_resamples / 4).max(20),
            ..self.measure
        }
    }
}

/// Runs all the experiments in order, E1 first.
pub fn all(ctx: &ExperimentCtx) -> Vec<ExperimentResult> {
    vec![
        framerate::run(ctx),
        dynamics::run(ctx),
        collision::run(ctx),
        platform::run(ctx),
        routing::run(ctx),
        init_protocol::run(ctx),
        sync_overhead::run(ctx),
        cluster_speedup::run(ctx),
        fleet::run(ctx),
        hetero_fleet::run(ctx),
        batch_stepping::run(ctx),
        fidelity_tiers::run(ctx),
        wallclock::run(ctx),
        observability::run(ctx),
    ]
}
