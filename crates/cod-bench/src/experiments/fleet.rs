//! Experiment E9 — fleet serving throughput versus shard count.
//!
//! The serving-layer counterpart of E8: instead of asking how fast one
//! session's modules run across the rack, E9 asks how many *sessions per
//! second* a pool of shards retires, and how that throughput scales as the
//! pool grows. The reproduction table sweeps 1–8 shards over the same seeded
//! workload; the timed routine runs a whole small fleet to drain. Throughput
//! is accounted in modeled time, so the scaling numbers are deterministic;
//! the `fleet_report` binary gates the 1 → 4 shard scaling at >= 2x.

use cod_fleet::{run_fleet, ExecutionMode, FleetConfig, ShardConfig, WorkloadConfig};

use super::ExperimentCtx;
use crate::measure::measure;
use crate::report::{DerivedMetric, ExperimentResult};

/// The workload both the table and the timed routine serve.
fn workload(sessions: usize) -> WorkloadConfig {
    WorkloadConfig { sessions, seed: 0xC0D, base_frames: 24, mean_interarrival_ticks: 1 }
}

fn config(shards: usize, sessions: usize) -> FleetConfig {
    FleetConfig {
        shards,
        shard: ShardConfig {
            slots: 4,
            batch_frames: 8,
            pool_per_shape: 2,
            ..ShardConfig::default()
        },
        max_pending: 16,
        workload: workload(sessions),
        execution: ExecutionMode::Modeled,
        ..FleetConfig::quick(shards, 0)
    }
}

/// Modeled sessions/sec for a shard count on the standard E9 workload.
pub fn sessions_per_sec(shards: usize) -> f64 {
    run_fleet(&config(shards, 32)).expect("fleet drains").sessions_per_sec()
}

fn print_table(one: f64, four: f64) {
    println!("\n=== E9: fleet throughput vs shard count (32 sessions, modeled time) ===");
    println!("shards | sessions/s | scaling");
    for shards in [1usize, 2, 4, 8] {
        let sps = match shards {
            1 => one,
            4 => four,
            n => sessions_per_sec(n),
        };
        println!("{shards:>6} | {sps:>10.2} | {:>6.2}x", sps / one.max(1e-12));
    }
    println!();
}

/// Runs E9 and returns its result.
pub fn run(ctx: &ExperimentCtx) -> ExperimentResult {
    let one = sessions_per_sec(1);
    let four = sessions_per_sec(4);
    if ctx.tables {
        print_table(one, four);
    }

    // Headline routine: serve a small fleet to drain on four shards.
    let timed_config = config(4, 12);
    let m = measure(&ctx.measure, || {
        run_fleet(&timed_config).expect("fleet drains");
    });

    let scaling = four / one.max(1e-12);
    if ctx.tables {
        println!(
            "measured: 1 shard {one:.2} sessions/s vs 4 shards {four:.2} sessions/s \
             (scaling {scaling:.2}x)\n"
        );
    }
    ExperimentResult {
        id: "E9".into(),
        name: "fleet".into(),
        bench_target: "fleet".into(),
        metric: "serve a 12-session fleet to drain on 4 shards".into(),
        timing: m.stats,
        iters_per_sample: m.iters_per_sample,
        comparison: None,
        derived: vec![
            DerivedMetric::new("sessions_per_sec_1_shard", "1/s", one),
            DerivedMetric::new("sessions_per_sec_4_shards", "1/s", four),
            DerivedMetric::new("scaling_1_to_4_shards", "x", scaling),
        ],
        notes: "Throughput is modeled (sum of per-tick critical-shard costs), so the scaling \
                is deterministic; `fleet_report --quick` gates 1 -> 4 shard scaling at >= 2x."
            .into(),
    }
}
