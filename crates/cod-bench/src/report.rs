//! Machine-readable experiment reports (`BENCH_cod.json`).
//!
//! Every experiment of `EXPERIMENTS.md` produces one [`ExperimentResult`]:
//! the wall-clock timing statistics of its headline routine plus any derived
//! quantities (frame rates, speedups, latencies) and — where the paper
//! reports a number — a measured-versus-paper [`Comparison`]. The
//! [`BenchReport`] aggregates all of them, renders the paper-style comparison
//! table, and serializes to a single JSON document so CI and future perf PRs
//! can diff results mechanically. Schema documentation lives in the README's
//! "Measurement & benchmarking" section.

use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::json::Json;
use crate::measure::Stats;

/// Version stamp of the JSON schema; bump on breaking layout changes.
pub const SCHEMA_VERSION: u32 = 1;

/// A secondary quantity derived from an experiment (a rate, a ratio, a
/// simulated-time latency, ...).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DerivedMetric {
    /// Metric name, e.g. `"cluster_fps"`.
    pub name: String,
    /// Unit, e.g. `"fps"`.
    pub unit: String,
    /// Value.
    pub value: f64,
}

impl DerivedMetric {
    /// Convenience constructor.
    pub fn new(name: &str, unit: &str, value: f64) -> DerivedMetric {
        DerivedMetric { name: name.to_owned(), unit: unit.to_owned(), value }
    }
}

/// A measured quantity next to the value the paper reports for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// What is being compared, e.g. `"synchronized surround-view frame rate"`.
    pub quantity: String,
    /// Unit of both values.
    pub unit: String,
    /// Our measured / modeled value.
    pub measured: f64,
    /// The paper-reported value.
    pub paper: f64,
}

/// Result of one experiment (`"E1"`–`"E9"`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id, `"E1"` .. `"E9"`.
    pub id: String,
    /// Short experiment name, matching the bench target.
    pub name: String,
    /// The `cargo bench` target that regenerates this experiment.
    pub bench_target: String,
    /// What the timed routine is.
    pub metric: String,
    /// Timing statistics in nanoseconds per iteration.
    pub timing: Stats,
    /// Calibrated iterations per timed sample.
    pub iters_per_sample: u64,
    /// Measured-versus-paper comparison, where the paper gives a number.
    pub comparison: Option<Comparison>,
    /// Derived quantities.
    pub derived: Vec<DerivedMetric>,
    /// Free-form context (hardware caveats, what the paper value means).
    pub notes: String,
}

impl ExperimentResult {
    /// One-line human summary of the timing statistics.
    pub fn summary(&self) -> String {
        let t = &self.timing;
        format!(
            "{} {}: {} median {} p95 {} p99 {} ({} samples, {} kept, {} iters/sample)",
            self.id,
            self.name,
            self.metric,
            format_ns(t.median),
            format_ns(t.p95),
            format_ns(t.p99),
            t.samples,
            t.kept,
            self.iters_per_sample,
        )
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), Json::Str(self.id.clone())),
            ("name".into(), Json::Str(self.name.clone())),
            ("bench_target".into(), Json::Str(self.bench_target.clone())),
            ("metric".into(), Json::Str(self.metric.clone())),
            ("unit".into(), Json::Str("ns_per_iter".into())),
            ("timing".into(), stats_to_json(&self.timing)),
            ("iters_per_sample".into(), Json::Num(self.iters_per_sample as f64)),
            (
                "comparison".into(),
                match &self.comparison {
                    None => Json::Null,
                    Some(c) => Json::Obj(vec![
                        ("quantity".into(), Json::Str(c.quantity.clone())),
                        ("unit".into(), Json::Str(c.unit.clone())),
                        ("measured".into(), Json::Num(c.measured)),
                        ("paper".into(), Json::Num(c.paper)),
                    ]),
                },
            ),
            (
                "derived".into(),
                Json::Arr(
                    self.derived
                        .iter()
                        .map(|d| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(d.name.clone())),
                                ("unit".into(), Json::Str(d.unit.clone())),
                                ("value".into(), Json::Num(d.value)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("notes".into(), Json::Str(self.notes.clone())),
        ])
    }

    fn from_json(json: &Json) -> Result<ExperimentResult, String> {
        let comparison = match json.get("comparison") {
            None | Some(Json::Null) => None,
            Some(c) => Some(Comparison {
                quantity: str_field(c, "quantity")?,
                unit: str_field(c, "unit")?,
                measured: num_field(c, "measured")?,
                paper: num_field(c, "paper")?,
            }),
        };
        let derived = json
            .get("derived")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|d| {
                Ok(DerivedMetric {
                    name: str_field(d, "name")?,
                    unit: str_field(d, "unit")?,
                    value: num_field(d, "value")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ExperimentResult {
            id: str_field(json, "id")?,
            name: str_field(json, "name")?,
            bench_target: str_field(json, "bench_target")?,
            metric: str_field(json, "metric")?,
            timing: stats_from_json(
                json.get("timing").ok_or_else(|| "experiment missing 'timing'".to_owned())?,
            )?,
            iters_per_sample: num_field(json, "iters_per_sample")? as u64,
            comparison,
            derived,
            notes: str_field(json, "notes")?,
        })
    }
}

/// The aggregate report written to `BENCH_cod.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Whether the reduced `--quick` measurement budget was used.
    pub quick: bool,
    /// Wall-clock generation time, milliseconds since the Unix epoch.
    pub generated_unix_ms: u64,
    /// One entry per experiment, E1 first.
    pub experiments: Vec<ExperimentResult>,
}

impl BenchReport {
    /// Builds a report stamped with `generated_unix_ms` (milliseconds since
    /// the Unix epoch — [`crate::measure::wall_unix_ms`] supplies it). The
    /// clock read lives with the rest of the measurement layer's wall-clock
    /// plumbing, not here: this module's output is diffed mechanically by
    /// CI, so `cod_audit` holds it to the ambient-env rule.
    pub fn new(
        quick: bool,
        generated_unix_ms: u64,
        experiments: Vec<ExperimentResult>,
    ) -> BenchReport {
        BenchReport { schema_version: SCHEMA_VERSION, quick, generated_unix_ms, experiments }
    }

    /// Looks up an experiment by id (`"E8"`).
    pub fn experiment(&self, id: &str) -> Option<&ExperimentResult> {
        self.experiments.iter().find(|e| e.id == id)
    }

    /// Serializes to the JSON tree.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::Num(self.schema_version as f64)),
            ("quick".into(), Json::Bool(self.quick)),
            ("generated_unix_ms".into(), Json::Num(self.generated_unix_ms as f64)),
            (
                "experiments".into(),
                Json::Arr(self.experiments.iter().map(ExperimentResult::to_json).collect()),
            ),
        ])
    }

    /// Deserializes from the JSON tree.
    pub fn from_json(json: &Json) -> Result<BenchReport, String> {
        let experiments = json
            .get("experiments")
            .and_then(Json::as_arr)
            .ok_or_else(|| "report missing 'experiments' array".to_owned())?
            .iter()
            .map(ExperimentResult::from_json)
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchReport {
            schema_version: num_field(json, "schema_version")? as u32,
            quick: json
                .get("quick")
                .and_then(Json::as_bool)
                .ok_or_else(|| "report missing 'quick'".to_owned())?,
            generated_unix_ms: num_field(json, "generated_unix_ms")? as u64,
            experiments,
        })
    }

    /// Renders the pretty JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Parses a document produced by [`BenchReport::to_json_string`].
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let json = Json::parse(text).map_err(|e| e.to_string())?;
        BenchReport::from_json(&json)
    }

    /// Writes the JSON document to `path`.
    pub fn write_file(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json_string())
    }

    /// The paper-style comparison table: timing summary per experiment plus
    /// the measured-versus-paper column where a paper value exists.
    pub fn comparison_table(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "experiment         | median    | p95       | p99       | n  | measured vs paper\n",
        );
        out.push_str(
            "-------------------+-----------+-----------+-----------+----+------------------\n",
        );
        for e in &self.experiments {
            let compared = match &e.comparison {
                Some(c) => {
                    format!("{:.1} vs {:.1} {} ({})", c.measured, c.paper, c.unit, c.quantity)
                }
                None => "—".to_owned(),
            };
            out.push_str(&format!(
                "{:<18} | {:>9} | {:>9} | {:>9} | {:>2} | {}\n",
                format!("{} {}", e.id, e.name),
                format_ns(e.timing.median),
                format_ns(e.timing.p95),
                format_ns(e.timing.p99),
                e.timing.kept,
                compared,
            ));
        }
        out
    }
}

fn stats_to_json(stats: &Stats) -> Json {
    Json::Obj(vec![
        ("samples".into(), Json::Num(stats.samples as f64)),
        ("kept".into(), Json::Num(stats.kept as f64)),
        ("outliers_rejected".into(), Json::Num(stats.outliers_rejected as f64)),
        ("mean".into(), Json::Num(stats.mean)),
        ("median".into(), Json::Num(stats.median)),
        ("p95".into(), Json::Num(stats.p95)),
        ("p99".into(), Json::Num(stats.p99)),
        ("min".into(), Json::Num(stats.min)),
        ("max".into(), Json::Num(stats.max)),
        ("std_dev".into(), Json::Num(stats.std_dev)),
        ("mad".into(), Json::Num(stats.mad)),
        ("ci_low".into(), Json::Num(stats.ci_low)),
        ("ci_high".into(), Json::Num(stats.ci_high)),
        ("confidence".into(), Json::Num(stats.confidence)),
    ])
}

fn stats_from_json(json: &Json) -> Result<Stats, String> {
    Ok(Stats {
        samples: num_field(json, "samples")? as usize,
        kept: num_field(json, "kept")? as usize,
        outliers_rejected: num_field(json, "outliers_rejected")? as usize,
        mean: num_field(json, "mean")?,
        median: num_field(json, "median")?,
        p95: num_field(json, "p95")?,
        p99: num_field(json, "p99")?,
        min: num_field(json, "min")?,
        max: num_field(json, "max")?,
        std_dev: num_field(json, "std_dev")?,
        mad: num_field(json, "mad")?,
        ci_low: num_field(json, "ci_low")?,
        ci_high: num_field(json, "ci_high")?,
        confidence: num_field(json, "confidence")?,
    })
}

fn str_field(json: &Json, key: &str) -> Result<String, String> {
    json.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn num_field(json: &Json, key: &str) -> Result<f64, String> {
    json.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing number field '{key}'"))
}

/// Human-formats a nanosecond quantity with an adaptive unit.
pub fn format_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".to_owned()
    } else if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::MeasureConfig;

    fn sample_stats() -> Stats {
        let xs: Vec<f64> = (0..20).map(|i| 1_000.0 + (i % 4) as f64 * 10.0).collect();
        Stats::from_samples(&xs, &MeasureConfig::default())
    }

    fn sample_report() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            quick: true,
            generated_unix_ms: 1_753_000_000_000,
            experiments: vec![
                ExperimentResult {
                    id: "E1".into(),
                    name: "framerate".into(),
                    bench_target: "framerate".into(),
                    metric: "render one surround frame".into(),
                    timing: sample_stats(),
                    iters_per_sample: 12,
                    comparison: Some(Comparison {
                        quantity: "synchronized fps at 3235 polygons".into(),
                        unit: "fps".into(),
                        measured: 16.2,
                        paper: 16.0,
                    }),
                    derived: vec![DerivedMetric::new("free_running_fps", "fps", 17.1)],
                    notes: "unit \"quotes\" and\nnewlines survive".into(),
                },
                ExperimentResult {
                    id: "E3".into(),
                    name: "collision".into(),
                    bench_target: "collision".into(),
                    metric: "trajectory sweep".into(),
                    timing: sample_stats(),
                    iters_per_sample: 1,
                    comparison: None,
                    derived: vec![],
                    notes: String::new(),
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let text = report.to_json_string();
        let parsed = BenchReport::parse(&text).expect("parses back");
        assert_eq!(parsed, report);
    }

    #[test]
    fn json_document_exposes_required_schema_fields() {
        let json = sample_report().to_json();
        let e1 = &json.get("experiments").unwrap().as_arr().unwrap()[0];
        let timing = e1.get("timing").unwrap();
        for key in ["median", "p95", "p99", "samples", "kept", "ci_low", "ci_high"] {
            assert!(timing.get(key).and_then(Json::as_f64).is_some(), "timing.{key} missing");
        }
        assert_eq!(e1.get("id").unwrap().as_str(), Some("E1"));
        assert_eq!(json.get("schema_version").unwrap().as_f64(), Some(SCHEMA_VERSION as f64));
    }

    #[test]
    fn comparison_table_lists_every_experiment() {
        let table = sample_report().comparison_table();
        assert!(table.contains("E1 framerate"));
        assert!(table.contains("E3 collision"));
        assert!(table.contains("16.2 vs 16.0 fps"));
    }

    #[test]
    fn format_ns_picks_adaptive_units() {
        assert_eq!(format_ns(250.0), "250 ns");
        assert_eq!(format_ns(2_500.0), "2.50 µs");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }

    #[test]
    fn experiment_lookup_by_id() {
        let report = sample_report();
        assert!(report.experiment("E3").is_some());
        assert!(report.experiment("E8").is_none());
    }
}
