//! Runs every experiment of `EXPERIMENTS.md` in one pass, prints the
//! paper-style comparison table and writes the machine-readable
//! `BENCH_cod.json` report.
//!
//! ```text
//! cargo run --release -p cod-bench --bin bench_report [-- --quick] [--out PATH] [--no-tables]
//! ```
//!
//! `--quick` selects the reduced measurement budget used by the CI smoke run;
//! `--out` overrides the report path (default `BENCH_cod.json` in the current
//! directory). Exits non-zero if the COD-vs-single-PC speedup regresses below
//! 3× — the repo's standing perf anchor — if the E12 Coarse-vs-Full score
//! drift escapes the pinned tolerance, if the E11 batched-stepping speedup
//! falls below its floor, or if the E14 tracing overhead escapes its 5%
//! ceiling.

use std::path::PathBuf;
use std::process::ExitCode;

use cod_bench::experiments::{self, ExperimentCtx};
use cod_bench::measure::MeasureConfig;
use cod_bench::report::BenchReport;

/// Minimum acceptable COD-vs-single-PC speedup on the default scene.
const SPEEDUP_FLOOR: f64 = 3.0;

/// Minimum acceptable E11 batched-over-scalar serving speedup at 8
/// same-shape residents per shard (measured ~1.9x; the margin absorbs
/// runner noise).
const BATCH_SPEEDUP_FLOOR: f64 = 1.5;

const USAGE: &str = "usage: bench_report [--quick] [--out PATH] [--no-tables]";

struct Args {
    quick: bool,
    tables: bool,
    help: bool,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { quick: false, tables: true, help: false, out: PathBuf::from("BENCH_cod.json") };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--no-tables" => args.tables = false,
            "--out" => {
                args.out =
                    PathBuf::from(argv.next().ok_or_else(|| "--out needs a path".to_owned())?);
            }
            "--help" | "-h" => args.help = true,
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    let measure = if args.quick { MeasureConfig::quick() } else { MeasureConfig::from_env() };
    let ctx = ExperimentCtx { measure, tables: args.tables };
    println!(
        "running experiments E1-E14 ({} budget: {} samples/experiment)...",
        if args.quick { "quick" } else { "full" },
        measure.samples
    );

    let results = experiments::all(&ctx);
    for result in &results {
        println!("{}", result.summary());
    }

    let report = BenchReport::new(args.quick, cod_bench::measure::wall_unix_ms(), results);
    println!("\n=== measured vs paper ===\n{}", report.comparison_table());

    if let Err(error) = report.write_file(&args.out) {
        eprintln!("failed to write {}: {error}", args.out.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {} ({} experiments)", args.out.display(), report.experiments.len());

    // Regression gate: the 8-PC COD must keep beating one desktop PC clearly.
    let speedup = report
        .experiment("E8")
        .and_then(|e| e.comparison.as_ref())
        .map(|c| c.measured)
        .unwrap_or(0.0);
    if speedup < SPEEDUP_FLOOR {
        eprintln!("REGRESSION: COD speedup {speedup:.2}x fell below the {SPEEDUP_FLOOR:.1}x floor");
        return ExitCode::FAILURE;
    }
    println!("COD speedup {speedup:.2}x (floor {SPEEDUP_FLOOR:.1}x) — ok");

    // Regression gate: the Coarse tier must stay score-compatible with the
    // full rack on the E12 spec sample.
    let drift = report
        .experiment("E12")
        .and_then(|e| e.derived.iter().find(|d| d.name == "max_score_drift"))
        .map(|d| d.value)
        .unwrap_or(f64::INFINITY);
    if drift > crane_sim::SCORE_DRIFT_TOLERANCE {
        eprintln!(
            "REGRESSION: E12 Coarse-vs-Full score drift {drift:.1} points escaped the \
             {:.1}-point tolerance",
            crane_sim::SCORE_DRIFT_TOLERANCE
        );
        return ExitCode::FAILURE;
    }
    println!(
        "E12 score drift {drift:.1} points (tolerance {:.1}) — ok",
        crane_sim::SCORE_DRIFT_TOLERANCE
    );

    // Regression gate: batched lockstep stepping must keep paying for itself
    // at the 8-resident cohort E11 sweeps (identity is asserted inside the
    // experiment; this gate is about the speed).
    let batch_speedup = report
        .experiment("E11")
        .and_then(|e| e.derived.iter().find(|d| d.name == "batched_speedup_8_residents"))
        .map(|d| d.value)
        .unwrap_or(0.0);
    if batch_speedup < BATCH_SPEEDUP_FLOOR {
        eprintln!(
            "REGRESSION: E11 batched stepping speedup {batch_speedup:.2}x at 8 residents fell \
             below the {BATCH_SPEEDUP_FLOOR:.1}x floor"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "E11 batched stepping {batch_speedup:.2}x at 8 residents (floor \
         {BATCH_SPEEDUP_FLOOR:.1}x) — ok"
    );

    // Regression gate: arming the deterministic trace sink must stay cheap
    // enough to leave on — E14 pins the ceiling.
    let overhead = report
        .experiment("E14")
        .and_then(|e| e.derived.iter().find(|d| d.name == "tracing_overhead_pct"))
        .map(|d| d.value)
        .unwrap_or(f64::INFINITY);
    let ceiling = cod_bench::experiments::observability::TRACING_OVERHEAD_CEILING_PCT;
    if overhead > ceiling {
        eprintln!(
            "REGRESSION: E14 tracing overhead {overhead:+.2}% escaped the {ceiling:.1}% ceiling \
             on the batched serving path"
        );
        return ExitCode::FAILURE;
    }
    println!("E14 tracing overhead {overhead:+.2}% (ceiling {ceiling:.1}%) — ok");
    ExitCode::SUCCESS
}
