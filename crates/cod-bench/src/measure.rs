//! Statistical measurement primitives for the benchmark harness.
//!
//! This replaces the bare wall-clock loop of the vendored criterion stub with
//! a small but real measurement pipeline: warm-up, calibrated per-sample
//! iteration counts, robust summary statistics (median / p95 / p99), MAD-based
//! outlier rejection, and a bootstrap confidence interval for the mean driven
//! by the vendored deterministic [`rand`] generator. Every number the harness
//! publishes flows through [`Stats::from_samples`], so a bench target, the
//! `bench_report` runner binary and the `vendor/criterion` compatibility shim
//! all report the same statistics.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Scale factor turning a median absolute deviation into a consistent
/// estimator of the standard deviation under normality.
const MAD_NORMAL_CONSISTENCY: f64 = 1.4826;

/// Configuration of one measurement run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasureConfig {
    /// Un-timed iterations executed before any sample is taken.
    pub warmup_iters: u64,
    /// Number of timed samples collected (each sample times a batch of
    /// iterations and records the mean nanoseconds per iteration).
    pub samples: usize,
    /// Target wall-clock duration of one sample; the iteration count per
    /// sample is calibrated from a probe run so a sample lands near this.
    pub target_sample_time: Duration,
    /// Upper bound on the calibrated iterations per sample.
    pub max_iters_per_sample: u64,
    /// Outlier cut: samples farther than this many scaled-MAD units from the
    /// median are rejected before summary statistics are computed.
    pub mad_sigmas: f64,
    /// Number of bootstrap resamples used for the confidence interval.
    pub bootstrap_resamples: usize,
    /// Two-sided confidence level of the bootstrap interval, in `(0, 1)`.
    pub confidence: f64,
    /// Seed of the deterministic bootstrap resampler.
    pub seed: u64,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            warmup_iters: 3,
            samples: 30,
            target_sample_time: Duration::from_millis(5),
            max_iters_per_sample: 10_000,
            mad_sigmas: 5.0,
            bootstrap_resamples: 200,
            confidence: 0.95,
            seed: 0xC0D,
        }
    }
}

impl MeasureConfig {
    /// A reduced budget for CI smoke runs (`bench_report --quick`).
    pub fn quick() -> Self {
        MeasureConfig {
            warmup_iters: 1,
            samples: 8,
            target_sample_time: Duration::from_millis(1),
            max_iters_per_sample: 200,
            bootstrap_resamples: 50,
            ..MeasureConfig::default()
        }
    }

    /// Default configuration, downgraded to [`MeasureConfig::quick`] when the
    /// `COD_BENCH_QUICK` environment variable is set to a non-`0` value.
    pub fn from_env() -> Self {
        match std::env::var("COD_BENCH_QUICK") {
            Ok(v) if !v.is_empty() && v != "0" => MeasureConfig::quick(),
            _ => MeasureConfig::default(),
        }
    }
}

/// Robust summary of a set of samples. For timing measurements the unit is
/// nanoseconds per iteration; the struct itself is unit-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Samples collected before outlier rejection.
    pub samples: usize,
    /// Samples surviving outlier rejection (all statistics use these).
    pub kept: usize,
    /// Samples rejected by the MAD cut.
    pub outliers_rejected: usize,
    /// Arithmetic mean of the kept samples.
    pub mean: f64,
    /// Median of the kept samples.
    pub median: f64,
    /// 95th percentile of the kept samples.
    pub p95: f64,
    /// 99th percentile of the kept samples.
    pub p99: f64,
    /// Smallest kept sample.
    pub min: f64,
    /// Largest kept sample.
    pub max: f64,
    /// Sample standard deviation of the kept samples.
    pub std_dev: f64,
    /// Raw (unscaled) median absolute deviation of the kept samples.
    pub mad: f64,
    /// Lower bound of the bootstrap confidence interval for the mean.
    pub ci_low: f64,
    /// Upper bound of the bootstrap confidence interval for the mean.
    pub ci_high: f64,
    /// Confidence level the interval was computed at.
    pub confidence: f64,
}

impl Stats {
    /// Computes the full summary for `samples`: MAD outlier rejection first,
    /// then order statistics and the bootstrap interval on the survivors.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64], config: &MeasureConfig) -> Stats {
        assert!(!samples.is_empty(), "Stats::from_samples needs at least one sample");
        let (kept, rejected) = reject_outliers_mad(samples, config.mad_sigmas);
        let (ci_low, ci_high) =
            bootstrap_ci(&kept, config.bootstrap_resamples, config.confidence, config.seed);
        Stats {
            samples: samples.len(),
            kept: kept.len(),
            outliers_rejected: rejected,
            mean: mean(&kept),
            median: median(&kept),
            p95: percentile(&kept, 95.0),
            p99: percentile(&kept, 99.0),
            min: kept.iter().copied().fold(f64::INFINITY, f64::min),
            max: kept.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            std_dev: std_dev(&kept),
            mad: mad(&kept),
            ci_low,
            ci_high,
            confidence: config.confidence,
        }
    }
}

/// Result of timing one routine under a [`MeasureConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Summary over the per-sample mean nanoseconds per iteration.
    pub stats: Stats,
    /// Calibrated iterations executed per timed sample.
    pub iters_per_sample: u64,
}

impl Measurement {
    /// Median nanoseconds per iteration.
    pub fn median_ns(&self) -> f64 {
        self.stats.median
    }

    /// Iterations per second at the median.
    pub fn median_rate(&self) -> f64 {
        1e9 / self.stats.median.max(f64::MIN_POSITIVE)
    }
}

/// Times `routine` under `config`: warm-up, iteration-count calibration, then
/// `config.samples` timed batches summarized into [`Stats`] (ns/iteration).
pub fn measure<F: FnMut()>(config: &MeasureConfig, mut routine: F) -> Measurement {
    for _ in 0..config.warmup_iters {
        routine();
    }
    let iters = calibrate(config, &mut routine);
    let mut samples = Vec::with_capacity(config.samples);
    for _ in 0..config.samples.max(1) {
        let start = Instant::now();
        for _ in 0..iters {
            routine();
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    Measurement { stats: Stats::from_samples(&samples, config), iters_per_sample: iters }
}

/// Milliseconds since the Unix epoch, for stamping report metadata. Lives
/// here — the measurement layer is the workspace's wall-clock fence (see
/// `audit.toml`) — so the report modules themselves never read a clock.
pub fn wall_unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Picks how many iterations one timed sample should batch so that a sample
/// lasts roughly `target_sample_time`, based on a single timed probe run.
fn calibrate<F: FnMut()>(config: &MeasureConfig, routine: &mut F) -> u64 {
    let start = Instant::now();
    routine();
    let probe_ns = start.elapsed().as_nanos().max(1) as u64;
    let target_ns = config.target_sample_time.as_nanos().max(1) as u64;
    (target_ns / probe_ns).clamp(1, config.max_iters_per_sample.max(1))
}

/// Arithmetic mean. Returns `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (`n - 1` denominator); `0.0` when `n < 2`.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Median of `xs` (mean of the two central order statistics for even `n`).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// The `p`-th percentile of `xs` (`p` in `[0, 100]`) with linear
/// interpolation between the surrounding order statistics, so `p = 0` is the
/// minimum, `p = 100` the maximum and `p = 50` the conventional median.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of an empty sample set");
    assert!((0.0..=100.0).contains(&p), "percentile {p} outside [0, 100]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-comparable sample"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Raw median absolute deviation from the median (unscaled).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn mad(xs: &[f64]) -> f64 {
    let m = median(xs);
    let deviations: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&deviations)
}

/// Drops every sample farther than `sigmas` scaled-MAD units from the median
/// and returns `(kept, rejected_count)`. When the MAD is zero (at least half
/// the samples identical) nothing is rejected — the spread estimate carries
/// no information there.
pub fn reject_outliers_mad(xs: &[f64], sigmas: f64) -> (Vec<f64>, usize) {
    if xs.len() < 3 {
        return (xs.to_vec(), 0);
    }
    let m = median(xs);
    let sigma = mad(xs) * MAD_NORMAL_CONSISTENCY;
    if sigma <= 0.0 {
        return (xs.to_vec(), 0);
    }
    let kept: Vec<f64> = xs.iter().copied().filter(|x| (x - m).abs() <= sigmas * sigma).collect();
    let rejected = xs.len() - kept.len();
    (kept, rejected)
}

/// Percentile-bootstrap confidence interval for the mean of `xs`, computed
/// from `resamples` deterministic resamples (seeded splitmix64 from the
/// vendored `rand`). Degenerates to a point interval when `n < 2`.
pub fn bootstrap_ci(xs: &[f64], resamples: usize, confidence: f64, seed: u64) -> (f64, f64) {
    assert!((0.0..1.0).contains(&confidence) && confidence > 0.0, "confidence must be in (0, 1)");
    if xs.len() < 2 {
        let point = xs.first().copied().unwrap_or(0.0);
        return (point, point);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut means = Vec::with_capacity(resamples.max(1));
    for _ in 0..resamples.max(1) {
        let sum: f64 = (0..xs.len()).map(|_| xs[rng.gen_range(0..xs.len())]).sum();
        means.push(sum / xs.len() as f64);
    }
    let alpha = (1.0 - confidence) / 2.0 * 100.0;
    (percentile(&means, alpha), percentile(&means, 100.0 - alpha))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_single_sample() {
        assert_eq!(median(&[7.5]), 7.5);
    }

    #[test]
    fn median_of_odd_count_is_central_element() {
        assert_eq!(median(&[9.0, 1.0, 5.0]), 5.0);
    }

    #[test]
    fn median_of_even_count_interpolates() {
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn percentile_edges_are_min_and_max() {
        let xs = [3.0, 1.0, 4.0, 1.5, 9.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 9.0);
    }

    #[test]
    fn percentile_interpolates_between_order_statistics() {
        // Sorted: [10, 20, 30, 40]; rank of p75 is 2.25 -> 30 + 0.25 * 10.
        assert_eq!(percentile(&[40.0, 10.0, 30.0, 20.0], 75.0), 32.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty_input() {
        percentile(&[], 50.0);
    }

    #[test]
    fn mad_of_constant_samples_is_zero() {
        assert_eq!(mad(&[2.0, 2.0, 2.0]), 0.0);
    }

    #[test]
    fn mad_rejection_drops_planted_outlier_only() {
        let mut xs = vec![10.0, 10.2, 9.9, 10.1, 9.8, 10.0, 10.3, 9.7];
        xs.push(1_000.0);
        let (kept, rejected) = reject_outliers_mad(&xs, 5.0);
        assert_eq!(rejected, 1);
        assert_eq!(kept.len(), 8);
        assert!(kept.iter().all(|&x| x < 100.0));
    }

    #[test]
    fn mad_rejection_keeps_clean_data() {
        let xs = [10.0, 10.2, 9.9, 10.1, 9.8];
        let (kept, rejected) = reject_outliers_mad(&xs, 5.0);
        assert_eq!(rejected, 0);
        assert_eq!(kept, xs.to_vec());
    }

    #[test]
    fn mad_rejection_with_zero_spread_keeps_everything() {
        let xs = [5.0, 5.0, 5.0, 5.0, 99.0];
        // MAD is zero: majority identical. The cut must not divide by zero or
        // reject arbitrarily.
        let (kept, rejected) = reject_outliers_mad(&xs, 5.0);
        assert_eq!(rejected, 0);
        assert_eq!(kept.len(), 5);
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean_and_is_deterministic() {
        let xs: Vec<f64> = (0..40).map(|i| 100.0 + (i % 7) as f64).collect();
        let a = bootstrap_ci(&xs, 200, 0.95, 42);
        let b = bootstrap_ci(&xs, 200, 0.95, 42);
        assert_eq!(a, b, "same seed must give the same interval");
        let m = mean(&xs);
        assert!(a.0 <= m && m <= a.1, "CI {a:?} must contain the sample mean {m}");
        assert!(a.0 < a.1);
    }

    #[test]
    fn bootstrap_ci_degenerates_for_single_sample() {
        assert_eq!(bootstrap_ci(&[3.0], 100, 0.95, 1), (3.0, 3.0));
    }

    #[test]
    fn stats_from_samples_counts_and_orders() {
        let config = MeasureConfig::default();
        let mut xs: Vec<f64> = (0..30).map(|i| 50.0 + (i % 5) as f64).collect();
        xs.push(5_000.0);
        let stats = Stats::from_samples(&xs, &config);
        assert_eq!(stats.samples, 31);
        assert_eq!(stats.outliers_rejected, 1);
        assert_eq!(stats.kept, 30);
        assert!(stats.min <= stats.median && stats.median <= stats.p95);
        assert!(stats.p95 <= stats.p99 && stats.p99 <= stats.max);
        assert!(stats.ci_low <= stats.mean && stats.mean <= stats.ci_high);
    }

    #[test]
    fn measure_times_a_real_routine() {
        let config = MeasureConfig {
            samples: 5,
            target_sample_time: Duration::from_micros(200),
            ..MeasureConfig::quick()
        };
        let mut acc = 0u64;
        let m = measure(&config, || {
            for i in 0..100u64 {
                acc = acc.wrapping_add(std::hint::black_box(i * i));
            }
        });
        assert_eq!(m.stats.samples, 5);
        assert!(m.stats.kept >= 1);
        assert!(m.stats.median > 0.0, "a non-empty loop takes time");
        assert!(m.iters_per_sample >= 1);
        std::hint::black_box(acc);
    }
}
