//! Period-accurate GPU cost model.
//!
//! The display computers of the original system used TNT2 M64 accelerators;
//! the measured result was 16 fps for 3 235 polygons on three synchronized
//! channels (paper §4). This model converts per-frame workload (triangles
//! submitted, pixels filled) into a frame time with coefficients calibrated so
//! that the reproduction lands in the same regime: a single channel renders the
//! training world in roughly 55 ms and the three-channel swap-locked surround
//! view comes out at roughly 16 fps.

use cod_net::Micros;
use serde::{Deserialize, Serialize};

/// Cost coefficients of one display channel (CPU + AGP + GPU of one desktop PC).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuCostModel {
    /// Fixed per-frame overhead (scene traversal, state changes, buffer swap), microseconds.
    pub frame_overhead_us: f64,
    /// Cost per triangle submitted (transform, lighting, setup), microseconds.
    pub per_triangle_us: f64,
    /// Cost per pixel filled, nanoseconds.
    pub per_pixel_ns: f64,
}

impl Default for GpuCostModel {
    fn default() -> Self {
        GpuCostModel::tnt2_class()
    }
}

impl GpuCostModel {
    /// Coefficients representative of the TNT2-class accelerator and the
    /// ~600 MHz desktop CPUs of the paper's rack.
    pub fn tnt2_class() -> GpuCostModel {
        GpuCostModel { frame_overhead_us: 8_000.0, per_triangle_us: 12.0, per_pixel_ns: 38.0 }
    }

    /// A roughly 4x faster card of a couple of years later, used by the
    /// "further accelerating the frame rate is possible" ablation.
    pub fn next_generation() -> GpuCostModel {
        GpuCostModel { frame_overhead_us: 4_000.0, per_triangle_us: 3.0, per_pixel_ns: 10.0 }
    }

    /// Estimated frame time for `triangles` submitted triangles and
    /// `pixels_filled` shaded pixels.
    pub fn frame_time(&self, triangles: usize, pixels_filled: usize) -> Micros {
        let us = self.frame_overhead_us
            + self.per_triangle_us * triangles as f64
            + self.per_pixel_ns * pixels_filled as f64 / 1_000.0;
        Micros(us.round() as u64)
    }

    /// Estimated frame time assuming a typical depth-complexity coverage of a
    /// 640x480 channel (the resolution of the original displays).
    pub fn frame_time_for_scene(&self, triangles: usize) -> Micros {
        // Empirically the training world fills roughly 70 % of the screen with
        // an average depth complexity of 1.6.
        let pixels = (640.0 * 480.0 * 0.7 * 1.6) as usize;
        self.frame_time(triangles, pixels)
    }

    /// Frames per second for a given frame time.
    pub fn fps(frame_time: Micros) -> f64 {
        if frame_time == Micros::ZERO {
            f64::INFINITY
        } else {
            1.0 / frame_time.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scene_lands_near_the_reported_regime() {
        let model = GpuCostModel::tnt2_class();
        let single_channel = model.frame_time_for_scene(3_235);
        let fps = GpuCostModel::fps(single_channel);
        // A single free-running channel should be in the high-teens of fps;
        // the swap-locked three-channel view (sync overhead added elsewhere)
        // then lands at the paper's 16 fps.
        assert!(fps > 14.0 && fps < 22.0, "single-channel fps = {fps}");
    }

    #[test]
    fn cost_grows_with_triangles_and_pixels() {
        let model = GpuCostModel::tnt2_class();
        assert!(model.frame_time(10_000, 100_000) > model.frame_time(1_000, 100_000));
        assert!(model.frame_time(1_000, 400_000) > model.frame_time(1_000, 100_000));
    }

    #[test]
    fn faster_hardware_is_faster() {
        let old = GpuCostModel::tnt2_class().frame_time_for_scene(3_235);
        let new = GpuCostModel::next_generation().frame_time_for_scene(3_235);
        assert!(new < old);
        assert!(GpuCostModel::fps(new) > 30.0, "next-gen hardware should clear the 30 fps bar");
    }

    #[test]
    fn fps_of_zero_frame_time_is_infinite() {
        assert!(GpuCostModel::fps(Micros::ZERO).is_infinite());
    }
}
