//! View-frustum culling.

use crane_scene::bounds::Aabb;
use sim_math::{Mat4, Vec3};

/// One clip plane in the form `normal . p + d >= 0` for points inside.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Plane {
    normal: Vec3,
    d: f64,
}

impl Plane {
    fn normalized(normal: Vec3, d: f64) -> Plane {
        let len = normal.length().max(1e-12);
        Plane { normal: normal / len, d: d / len }
    }

    fn signed_distance(&self, p: Vec3) -> f64 {
        self.normal.dot(p) + self.d
    }
}

/// A view frustum extracted from a view-projection matrix
/// (Gribb–Hartmann plane extraction).
#[derive(Debug, Clone, PartialEq)]
pub struct Frustum {
    planes: [Plane; 6],
}

impl Frustum {
    /// Extracts the six clip planes from a view-projection matrix.
    pub fn from_view_projection(m: &Mat4) -> Frustum {
        let row = |i: usize| Vec3::new(m.m[i][0], m.m[i][1], m.m[i][2]);
        let d = |i: usize| m.m[i][3];
        let planes = [
            Plane::normalized(row(3) + row(0), d(3) + d(0)), // left
            Plane::normalized(row(3) - row(0), d(3) - d(0)), // right
            Plane::normalized(row(3) + row(1), d(3) + d(1)), // bottom
            Plane::normalized(row(3) - row(1), d(3) - d(1)), // top
            Plane::normalized(row(3) + row(2), d(3) + d(2)), // near
            Plane::normalized(row(3) - row(2), d(3) - d(2)), // far
        ];
        Frustum { planes }
    }

    /// Whether a sphere is at least partially inside the frustum.
    pub fn intersects_sphere(&self, center: Vec3, radius: f64) -> bool {
        self.planes.iter().all(|p| p.signed_distance(center) >= -radius)
    }

    /// Whether an AABB is at least partially inside the frustum
    /// (conservative: may report true for boxes slightly outside).
    pub fn intersects_aabb(&self, aabb: &Aabb) -> bool {
        if aabb.is_empty() {
            return false;
        }
        self.intersects_sphere(aabb.center(), aabb.bounding_radius())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::Camera;

    fn camera() -> Camera {
        Camera::look_at(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 10.0))
    }

    #[test]
    fn sphere_in_front_is_visible() {
        let f = Frustum::from_view_projection(&camera().view_projection());
        assert!(f.intersects_sphere(Vec3::new(0.0, 0.0, 20.0), 1.0));
    }

    #[test]
    fn sphere_behind_is_culled() {
        let f = Frustum::from_view_projection(&camera().view_projection());
        assert!(!f.intersects_sphere(Vec3::new(0.0, 0.0, -20.0), 1.0));
    }

    #[test]
    fn sphere_far_to_the_side_is_culled_but_partial_overlap_is_kept() {
        let f = Frustum::from_view_projection(&camera().view_projection());
        assert!(!f.intersects_sphere(Vec3::new(200.0, 0.0, 20.0), 1.0));
        // A big sphere straddling the left plane must be kept.
        assert!(f.intersects_sphere(Vec3::new(-25.0, 0.0, 20.0), 30.0));
    }

    #[test]
    fn beyond_far_plane_is_culled() {
        let cam = camera();
        let f = Frustum::from_view_projection(&cam.view_projection());
        assert!(!f.intersects_sphere(Vec3::new(0.0, 0.0, cam.far + 100.0), 1.0));
    }

    #[test]
    fn aabb_tests_follow_sphere_tests() {
        let f = Frustum::from_view_projection(&camera().view_projection());
        let visible = Aabb::from_center_half_extents(Vec3::new(0.0, 0.0, 15.0), Vec3::splat(1.0));
        let hidden = Aabb::from_center_half_extents(Vec3::new(0.0, 0.0, -15.0), Vec3::splat(1.0));
        assert!(f.intersects_aabb(&visible));
        assert!(!f.intersects_aabb(&hidden));
        assert!(!f.intersects_aabb(&Aabb::empty()));
    }
}
