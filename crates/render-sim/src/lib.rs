//! Visual display substrate.
//!
//! The original system drove three monitors with TNT2 M64 graphics cards and
//! measured 16 frames per second for the synchronized surround view of a
//! 3 235-polygon scene (paper §4). Physical late-1990s GPUs are not available
//! here, so this crate substitutes two things that together reproduce the
//! paper's visual pipeline:
//!
//! * a real **software rasterizer** ([`raster`], [`pipeline`]) that renders the
//!   training world into a z-buffered framebuffer (the examples write PPM
//!   screenshots with it), and
//! * a **period-accurate cost model** ([`cost`]) calibrated to a TNT2-class
//!   accelerator, which converts "triangles submitted + pixels filled" into a
//!   frame time so the frame-rate experiments (E1–E3) can be regenerated
//!   deterministically.
//!
//! The [`surround`] module composes three camera channels (roughly 120° of
//! horizontal view, §3.7) and models the swap-lock synchronization the fourth
//! computer provided.

pub mod camera;
pub mod cost;
pub mod framebuffer;
pub mod frustum;
pub mod pipeline;
pub mod raster;
pub mod surround;

pub use camera::Camera;
pub use cost::GpuCostModel;
pub use framebuffer::Framebuffer;
pub use frustum::Frustum;
pub use pipeline::{RenderStats, Renderer};
pub use surround::{SurroundStats, SurroundView};
