//! The three-channel surround view (paper §3.7 and §4).
//!
//! "Three monitors are used to provide around 120 degrees of surround view.
//! This surround view system is fully synchronized with each other so that a
//! consistent view will be displayed." Each channel is a [`Renderer`] with the
//! same eye point but a different yaw offset; the swap-lock model adds the
//! synchronization overhead the fourth computer imposed.

use cod_net::Micros;
use crane_scene::graph::SceneGraph;
use serde::{Deserialize, Serialize};

use crate::camera::Camera;
use crate::cost::GpuCostModel;
use crate::pipeline::{RenderStats, Renderer};

/// Per-frame statistics of the whole surround view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurroundStats {
    /// Per-channel render statistics (left to right).
    pub channels: Vec<RenderStats>,
    /// Per-channel modeled frame times.
    pub channel_times: Vec<Micros>,
    /// Frame period of the synchronized (swap-locked) view.
    pub synchronized_period: Micros,
    /// Frame period the slowest channel would achieve free-running.
    pub free_running_period: Micros,
}

impl SurroundStats {
    /// Synchronized frame rate in frames per second.
    pub fn synchronized_fps(&self) -> f64 {
        GpuCostModel::fps(self.synchronized_period)
    }

    /// Free-running frame rate of the slowest channel.
    pub fn free_running_fps(&self) -> f64 {
        GpuCostModel::fps(self.free_running_period)
    }

    /// Fraction of the synchronized frame spent on synchronization overhead.
    pub fn sync_overhead_fraction(&self) -> f64 {
        if self.synchronized_period == Micros::ZERO {
            return 0.0;
        }
        (self.synchronized_period.0 - self.free_running_period.0) as f64
            / self.synchronized_period.0 as f64
    }
}

/// The three (or more) display channels of the simulator.
#[derive(Debug)]
pub struct SurroundView {
    renderers: Vec<Renderer>,
    yaw_offsets: Vec<f64>,
    cost_model: GpuCostModel,
    /// Swap-lock barrier overhead per frame (LAN round trip + server processing).
    pub barrier_overhead: Micros,
}

impl SurroundView {
    /// Creates a surround view with `channels` channels of `width` x `height`
    /// pixels each, spreading `total_fov` radians of yaw across the channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize, width: usize, height: usize, total_fov: f64) -> SurroundView {
        assert!(channels > 0, "at least one display channel is required");
        let per_channel = total_fov / channels as f64;
        let yaw_offsets = (0..channels)
            .map(|i| (i as f64 - (channels as f64 - 1.0) / 2.0) * per_channel)
            .collect();
        SurroundView {
            renderers: (0..channels).map(|_| Renderer::new(width, height)).collect(),
            yaw_offsets,
            cost_model: GpuCostModel::tnt2_class(),
            barrier_overhead: Micros::from_millis(3),
        }
    }

    /// The standard configuration of the paper: three 640x480 channels
    /// covering roughly 120 degrees.
    pub fn paper_configuration() -> SurroundView {
        SurroundView::new(3, 640, 480, 120f64.to_radians())
    }

    /// Replaces the hardware cost model (e.g. with [`GpuCostModel::next_generation`]).
    pub fn set_cost_model(&mut self, model: GpuCostModel) {
        self.cost_model = model;
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.renderers.len()
    }

    /// Access to one channel's renderer (for screenshots).
    pub fn renderer(&self, channel: usize) -> &Renderer {
        &self.renderers[channel]
    }

    /// Renders every channel from `center_camera` (each channel applies its yaw
    /// offset) and returns the per-frame statistics including the swap-lock model.
    pub fn render(&mut self, scene: &SceneGraph, center_camera: &Camera) -> SurroundStats {
        let mut channels = Vec::with_capacity(self.renderers.len());
        let mut channel_times = Vec::with_capacity(self.renderers.len());
        for (renderer, yaw) in self.renderers.iter_mut().zip(&self.yaw_offsets) {
            let camera = center_camera.with_yaw_offset(*yaw);
            let stats = renderer.render(scene, &camera);
            channel_times.push(stats.frame_time(&self.cost_model));
            channels.push(stats);
        }
        let free_running_period = channel_times.iter().copied().max().unwrap_or(Micros::ZERO);
        SurroundStats {
            channels,
            channel_times,
            synchronized_period: free_running_period + self.barrier_overhead,
            free_running_period,
        }
    }

    /// Frame-time estimate without rendering: uses the cost model's standard
    /// screen coverage for a scene of `triangles` polygons per channel.
    pub fn estimate(&self, triangles: usize) -> SurroundStats {
        let per_channel = self.cost_model.frame_time_for_scene(triangles);
        let channel_times = vec![per_channel; self.renderers.len()];
        SurroundStats {
            channels: Vec::new(),
            channel_times,
            synchronized_period: per_channel + self.barrier_overhead,
            free_running_period: per_channel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crane_scene::world::TrainingWorld;
    use sim_math::Vec3;

    #[test]
    fn paper_configuration_reproduces_the_sixteen_fps_regime() {
        let view = SurroundView::paper_configuration();
        let stats = view.estimate(3_235);
        let fps = stats.synchronized_fps();
        assert!(fps > 14.0 && fps < 18.0, "synchronized fps = {fps}");
        // Removing the synchronization overhead buys a measurable speedup,
        // which is what the paper's §5 hints at.
        assert!(stats.free_running_fps() > fps);
        assert!(stats.sync_overhead_fraction() > 0.02);
    }

    #[test]
    fn channels_see_different_parts_of_the_world() {
        let world = TrainingWorld::build();
        let mut view = SurroundView::new(3, 80, 60, 120f64.to_radians());
        let camera = Camera::look_at(Vec3::new(0.0, 4.0, -50.0), Vec3::new(0.0, 2.0, 60.0));
        let stats = view.render(&world.scene, &camera);
        assert_eq!(stats.channels.len(), 3);
        // The three channels cover different yaw ranges and therefore submit
        // different triangle counts.
        let submitted: Vec<usize> = stats.channels.iter().map(|c| c.triangles_submitted).collect();
        assert!(submitted.iter().any(|s| *s != submitted[0]), "channels identical: {submitted:?}");
        assert!(stats.synchronized_period > stats.free_running_period);
    }

    #[test]
    fn golden_image_checksums_of_the_three_channels() {
        // The golden-image regression: render the three 64x48 channels of the
        // standard training world from a fixed camera and compare framebuffer
        // checksums, replacing eyeballing of the PPM screenshots. If a change
        // *intentionally* alters rendering, regenerate with:
        //   view.renderer(c).framebuffer().checksum()
        // and update the constants below.
        let world = TrainingWorld::build();
        let mut view = SurroundView::new(3, 64, 48, 120f64.to_radians());
        let camera = Camera::look_at(Vec3::new(0.0, 5.0, -55.0), Vec3::new(0.0, 2.0, 40.0));
        view.render(&world.scene, &camera);
        let checksums: [u64; 3] =
            core::array::from_fn(|c| view.renderer(c).framebuffer().checksum());

        // The scene path goes through f64 sin/cos, whose last-ulp results are
        // platform-libm dependent, so the exact constants are only asserted on
        // the platform CI runs; other platforms still get the structural and
        // stability checks below.
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            const GOLDEN: [u64; 3] =
                [0x6ba0_2a5c_fb05_12d8, 0xc2ac_e342_ecfd_a978, 0xf84d_f7aa_497e_61fb];
            assert_eq!(
                checksums, GOLDEN,
                "surround rendering changed; if intentional, update the golden checksums"
            );
        }
        // The three views really are distinct images.
        assert_ne!(checksums[0], checksums[1]);
        assert_ne!(checksums[1], checksums[2]);

        // Re-rendering the same frame is bit-stable (the golden values are
        // meaningful, not an accident of initialization).
        view.render(&world.scene, &camera);
        let again: [u64; 3] = core::array::from_fn(|c| view.renderer(c).framebuffer().checksum());
        assert_eq!(again, checksums);
    }

    #[test]
    fn more_channels_do_not_change_the_synchronized_period_model() {
        let three = SurroundView::new(3, 64, 48, 2.0).estimate(3_000);
        let five = SurroundView::new(5, 64, 48, 2.5).estimate(3_000);
        // Channels render in parallel on their own computers, so the period is
        // set by the per-channel time plus the barrier, independent of count.
        assert_eq!(three.synchronized_period, five.synchronized_period);
    }

    #[test]
    fn faster_hardware_raises_the_frame_rate() {
        let mut view = SurroundView::paper_configuration();
        let old = view.estimate(3_235).synchronized_fps();
        view.set_cost_model(GpuCostModel::next_generation());
        let new = view.estimate(3_235).synchronized_fps();
        assert!(new > old * 2.0, "old {old}, new {new}");
    }

    #[test]
    #[should_panic]
    fn zero_channels_rejected() {
        let _ = SurroundView::new(0, 64, 48, 1.0);
    }
}
