//! The viewing camera.

use serde::{Deserialize, Serialize};
use sim_math::{Mat4, Vec3};

/// A perspective camera.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Camera {
    /// Eye position in world space.
    pub position: Vec3,
    /// Yaw about +Y in radians (0 looks along -Z... see [`Camera::forward`]).
    pub yaw: f64,
    /// Pitch in radians (positive looks up).
    pub pitch: f64,
    /// Vertical field of view in radians.
    pub fov_y: f64,
    /// Aspect ratio (width / height).
    pub aspect: f64,
    /// Near clip distance.
    pub near: f64,
    /// Far clip distance.
    pub far: f64,
}

impl Default for Camera {
    fn default() -> Self {
        Camera {
            position: Vec3::new(0.0, 2.0, 0.0),
            yaw: 0.0,
            pitch: 0.0,
            fov_y: 50f64.to_radians(),
            aspect: 4.0 / 3.0,
            near: 0.5,
            far: 400.0,
        }
    }
}

impl Camera {
    /// A camera at `position` looking toward `target`.
    pub fn look_at(position: Vec3, target: Vec3) -> Camera {
        let dir = (target - position).normalized_or(Vec3::new(0.0, 0.0, 1.0));
        Camera { position, yaw: dir.x.atan2(dir.z), pitch: dir.y.asin(), ..Camera::default() }
    }

    /// The forward (viewing) direction.
    pub fn forward(&self) -> Vec3 {
        Vec3::new(
            self.pitch.cos() * self.yaw.sin(),
            self.pitch.sin(),
            self.pitch.cos() * self.yaw.cos(),
        )
    }

    /// A copy with the yaw rotated by `delta` radians (used by the surround view).
    pub fn with_yaw_offset(&self, delta: f64) -> Camera {
        Camera { yaw: self.yaw + delta, ..*self }
    }

    /// View matrix (world to camera space).
    pub fn view_matrix(&self) -> Mat4 {
        Mat4::look_at(self.position, self.position + self.forward(), Vec3::unit_y())
    }

    /// Projection matrix.
    pub fn projection_matrix(&self) -> Mat4 {
        Mat4::perspective(self.fov_y, self.aspect, self.near, self.far)
    }

    /// Combined view-projection matrix.
    pub fn view_projection(&self) -> Mat4 {
        self.projection_matrix() * self.view_matrix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn look_at_faces_the_target() {
        let cam = Camera::look_at(Vec3::new(0.0, 5.0, -10.0), Vec3::new(0.0, 5.0, 0.0));
        assert!(cam.forward().dot(Vec3::unit_z()) > 0.99);
    }

    #[test]
    fn point_in_front_projects_inside_ndc() {
        let cam = Camera::look_at(Vec3::new(0.0, 2.0, -10.0), Vec3::new(0.0, 2.0, 0.0));
        let clip = cam.view_projection().transform_point(Vec3::new(0.0, 2.0, 0.0));
        assert!(clip.x.abs() <= 1.0 && clip.y.abs() <= 1.0 && clip.z.abs() <= 1.0);
    }

    #[test]
    fn point_behind_projects_outside() {
        let cam = Camera::look_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 10.0));
        let (_, w) = cam.view_projection().transform_homogeneous(Vec3::new(0.0, 0.0, -5.0));
        assert!(w < 0.0, "points behind the camera have negative clip w");
    }

    #[test]
    fn yaw_offset_rotates_forward() {
        let cam = Camera::look_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 10.0));
        let left = cam.with_yaw_offset(40f64.to_radians());
        assert!((left.forward().dot(cam.forward()) - 40f64.to_radians().cos()).abs() < 1e-9);
    }
}
