//! Triangle rasterization with a z-buffer and flat shading.

use crane_scene::mesh::Color;
use sim_math::{Mat4, Vec3};

use crate::framebuffer::Framebuffer;

/// Result of rasterizing one triangle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TriangleRaster {
    /// Whether the triangle produced any fragments.
    pub drawn: bool,
    /// Number of pixels written (after the depth test).
    pub pixels_written: usize,
    /// Number of pixels covered (before the depth test).
    pub pixels_covered: usize,
}

/// Projects a world-space point through `view_projection` into screen space.
/// Returns `(screen_x, screen_y, depth, clip_w)`.
fn project(view_projection: &Mat4, p: Vec3, width: f64, height: f64) -> (f64, f64, f64, f64) {
    let (clip, w) = view_projection.transform_homogeneous(p);
    if w.abs() < 1e-9 {
        return (0.0, 0.0, f64::INFINITY, w);
    }
    let ndc = clip / w;
    let x = (ndc.x + 1.0) * 0.5 * width;
    let y = (1.0 - ndc.y) * 0.5 * height;
    (x, y, ndc.z, w)
}

/// Rasterizes one world-space triangle into the framebuffer with flat shading.
///
/// Triangles that are behind the camera, back-facing, or degenerate are
/// rejected. The shade is the triangle color scaled by a simple directional
/// light plus an ambient term.
pub fn rasterize_triangle(
    fb: &mut Framebuffer,
    view_projection: &Mat4,
    world: [Vec3; 3],
    normal: Vec3,
    color: Color,
    light_direction: Vec3,
) -> TriangleRaster {
    let mut result = TriangleRaster::default();
    let width = fb.width() as f64;
    let height = fb.height() as f64;

    let projected = [
        project(view_projection, world[0], width, height),
        project(view_projection, world[1], width, height),
        project(view_projection, world[2], width, height),
    ];
    // Reject triangles crossing or behind the near plane (w <= 0); a full
    // clipper is unnecessary for the scene scale used here.
    if projected.iter().any(|p| p.3 <= 0.0) {
        return result;
    }

    // Back-face culling in screen space (counter-clockwise wound faces are front).
    let area = (projected[1].0 - projected[0].0) * (projected[2].1 - projected[0].1)
        - (projected[2].0 - projected[0].0) * (projected[1].1 - projected[0].1);
    if area.abs() < 1e-9 || area > 0.0 {
        return result;
    }

    // Flat shading.
    let light = light_direction.normalized_or(Vec3::unit_y());
    let diffuse = normal.normalized_or(Vec3::unit_y()).dot(-light).max(0.0);
    let shade = color.scaled(0.35 + 0.65 * diffuse);

    // Bounding box of the triangle, clamped to the framebuffer.
    let min_x =
        projected.iter().map(|p| p.0).fold(f64::INFINITY, f64::min).floor().max(0.0) as usize;
    let max_x =
        projected.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max).ceil().min(width - 1.0)
            as usize;
    let min_y =
        projected.iter().map(|p| p.1).fold(f64::INFINITY, f64::min).floor().max(0.0) as usize;
    let max_y =
        projected.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max).ceil().min(height - 1.0)
            as usize;
    if min_x > max_x || min_y > max_y {
        return result;
    }

    let edge = |a: (f64, f64, f64, f64), b: (f64, f64, f64, f64), px: f64, py: f64| {
        (b.0 - a.0) * (py - a.1) - (b.1 - a.1) * (px - a.0)
    };

    for y in min_y..=max_y {
        for x in min_x..=max_x {
            let px = x as f64 + 0.5;
            let py = y as f64 + 0.5;
            let w0 = edge(projected[1], projected[2], px, py);
            let w1 = edge(projected[2], projected[0], px, py);
            let w2 = edge(projected[0], projected[1], px, py);
            // With clockwise screen-space winding all edge functions are <= 0 inside.
            if w0 > 0.0 || w1 > 0.0 || w2 > 0.0 {
                continue;
            }
            result.pixels_covered += 1;
            let sum = w0 + w1 + w2;
            if sum.abs() < 1e-12 {
                continue;
            }
            let depth = (w0 * projected[0].2 + w1 * projected[1].2 + w2 * projected[2].2) / sum;
            if fb.set_pixel(x, y, depth as f32, shade) {
                result.pixels_written += 1;
            }
        }
    }
    result.drawn = result.pixels_covered > 0;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::Camera;

    fn camera() -> Camera {
        Camera::look_at(Vec3::new(0.0, 0.0, -10.0), Vec3::ZERO)
    }

    fn facing_triangle() -> [Vec3; 3] {
        // Counter-clockwise as seen from the camera at -Z looking toward +Z.
        [Vec3::new(-1.0, -1.0, 0.0), Vec3::new(0.0, 1.0, 0.0), Vec3::new(1.0, -1.0, 0.0)]
    }

    #[test]
    fn front_facing_triangle_is_drawn() {
        let mut fb = Framebuffer::new(64, 64);
        let cam = camera();
        let r = rasterize_triangle(
            &mut fb,
            &cam.view_projection(),
            facing_triangle(),
            Vec3::new(0.0, 0.0, -1.0),
            Color::CRANE_YELLOW,
            Vec3::new(0.0, -1.0, 1.0),
        );
        assert!(r.drawn);
        assert!(r.pixels_written > 20, "only {} pixels written", r.pixels_written);
        assert!(fb.covered_pixels(Color::new(0, 0, 0)) == r.pixels_written);
    }

    #[test]
    fn back_facing_triangle_is_culled() {
        let mut fb = Framebuffer::new(64, 64);
        let cam = camera();
        let mut tri = facing_triangle();
        tri.swap(1, 2);
        let r = rasterize_triangle(
            &mut fb,
            &cam.view_projection(),
            tri,
            Vec3::new(0.0, 0.0, 1.0),
            Color::CRANE_YELLOW,
            Vec3::unit_y(),
        );
        assert!(!r.drawn);
        assert_eq!(r.pixels_written, 0);
    }

    #[test]
    fn triangle_behind_the_camera_is_rejected() {
        let mut fb = Framebuffer::new(64, 64);
        let cam = camera();
        let tri =
            [Vec3::new(-1.0, -1.0, -50.0), Vec3::new(0.0, 1.0, -50.0), Vec3::new(1.0, -1.0, -50.0)];
        let r = rasterize_triangle(
            &mut fb,
            &cam.view_projection(),
            tri,
            Vec3::new(0.0, 0.0, -1.0),
            Color::GRAY,
            Vec3::unit_y(),
        );
        assert!(!r.drawn);
    }

    #[test]
    fn nearer_triangle_wins_the_depth_test() {
        let mut fb = Framebuffer::new(64, 64);
        let cam = camera();
        let vp = cam.view_projection();
        let far = facing_triangle().map(|v| v + Vec3::new(0.0, 0.0, 5.0));
        rasterize_triangle(
            &mut fb,
            &vp,
            far,
            Vec3::new(0.0, 0.0, -1.0),
            Color::SAFETY_RED,
            Vec3::unit_y(),
        );
        rasterize_triangle(
            &mut fb,
            &vp,
            facing_triangle(),
            Vec3::new(0.0, 0.0, -1.0),
            Color::CRANE_YELLOW,
            Vec3::unit_y(),
        );
        // The centre pixel must show the nearer (yellow-ish) triangle.
        let centre = fb.pixel(32, 36);
        assert!(centre.r > centre.b, "expected the near triangle's warm color, got {centre:?}");
    }

    #[test]
    fn brighter_when_facing_the_light() {
        let mut lit = Framebuffer::new(32, 32);
        let mut unlit = Framebuffer::new(32, 32);
        let cam = camera();
        let vp = cam.view_projection();
        rasterize_triangle(
            &mut lit,
            &vp,
            facing_triangle(),
            Vec3::new(0.0, 0.0, -1.0),
            Color::new(200, 200, 200),
            Vec3::new(0.0, 0.0, 1.0), // light shining toward -Z, i.e. onto the face
        );
        rasterize_triangle(
            &mut unlit,
            &vp,
            facing_triangle(),
            Vec3::new(0.0, 0.0, -1.0),
            Color::new(200, 200, 200),
            Vec3::new(0.0, 0.0, -1.0),
        );
        assert!(lit.pixel(16, 18).r > unlit.pixel(16, 18).r);
    }
}
