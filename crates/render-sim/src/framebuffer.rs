//! A z-buffered RGB framebuffer.

use crane_scene::mesh::Color;
use sim_math::Fnv1a;

/// A color + depth framebuffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Framebuffer {
    width: usize,
    height: usize,
    color: Vec<Color>,
    depth: Vec<f32>,
}

impl Framebuffer {
    /// Creates a framebuffer of the given size, cleared to black.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Framebuffer {
        assert!(width > 0 && height > 0, "framebuffer dimensions must be positive");
        Framebuffer {
            width,
            height,
            color: vec![Color::new(0, 0, 0); width * height],
            depth: vec![f32::INFINITY; width * height],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Clears color to `clear_color` and depth to infinity.
    pub fn clear(&mut self, clear_color: Color) {
        self.color.fill(clear_color);
        self.depth.fill(f32::INFINITY);
    }

    /// Writes a pixel if it passes the depth test. Returns `true` if written.
    pub fn set_pixel(&mut self, x: usize, y: usize, depth: f32, color: Color) -> bool {
        if x >= self.width || y >= self.height {
            return false;
        }
        let index = y * self.width + x;
        if depth < self.depth[index] {
            self.depth[index] = depth;
            self.color[index] = color;
            true
        } else {
            false
        }
    }

    /// Reads a pixel's color.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn pixel(&self, x: usize, y: usize) -> Color {
        assert!(x < self.width && y < self.height, "pixel out of range");
        self.color[y * self.width + x]
    }

    /// Reads a pixel's depth.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn pixel_depth(&self, x: usize, y: usize) -> f32 {
        assert!(x < self.width && y < self.height, "pixel out of range");
        self.depth[y * self.width + x]
    }

    /// Number of pixels whose color differs from `background` (a cheap measure
    /// of how much of the frame was covered by geometry).
    pub fn covered_pixels(&self, background: Color) -> usize {
        self.color.iter().filter(|c| **c != background).count()
    }

    /// Encodes the color buffer as a binary PPM image (P6).
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for c in &self.color {
            out.extend_from_slice(&[c.r, c.g, c.b]);
        }
        out
    }

    /// A stable FNV-1a checksum of the RGB contents (dimensions included), used
    /// by the golden-image tests instead of eyeballing PPM screenshots.
    pub fn checksum(&self) -> u64 {
        let mut hash = Fnv1a::new();
        hash.write_u64(self.width as u64);
        hash.write_u64(self.height as u64);
        for c in &self.color {
            hash.write_u8(c.r);
            hash.write_u8(c.g);
            hash.write_u8(c.b);
        }
        hash.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_test_keeps_the_nearest_fragment() {
        let mut fb = Framebuffer::new(4, 4);
        assert!(fb.set_pixel(1, 1, 5.0, Color::new(10, 0, 0)));
        assert!(!fb.set_pixel(1, 1, 9.0, Color::new(0, 10, 0)), "farther fragment must lose");
        assert!(fb.set_pixel(1, 1, 2.0, Color::new(0, 0, 10)));
        assert_eq!(fb.pixel(1, 1), Color::new(0, 0, 10));
        assert_eq!(fb.pixel_depth(1, 1), 2.0);
    }

    #[test]
    fn out_of_range_writes_are_ignored() {
        let mut fb = Framebuffer::new(2, 2);
        assert!(!fb.set_pixel(5, 0, 1.0, Color::new(1, 2, 3)));
    }

    #[test]
    fn clear_resets_color_and_depth() {
        let mut fb = Framebuffer::new(2, 2);
        fb.set_pixel(0, 0, 1.0, Color::new(9, 9, 9));
        fb.clear(Color::SKY);
        assert_eq!(fb.pixel(0, 0), Color::SKY);
        assert_eq!(fb.pixel_depth(0, 0), f32::INFINITY);
        assert_eq!(fb.covered_pixels(Color::SKY), 0);
    }

    #[test]
    fn ppm_has_correct_header_and_size() {
        let fb = Framebuffer::new(3, 2);
        let ppm = fb.to_ppm();
        assert!(ppm.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(ppm.len(), 11 + 3 * 2 * 3);
    }

    #[test]
    #[should_panic]
    fn zero_size_rejected() {
        let _ = Framebuffer::new(0, 10);
    }

    #[test]
    fn checksum_is_content_sensitive_and_stable() {
        let mut a = Framebuffer::new(4, 4);
        let mut b = Framebuffer::new(4, 4);
        assert_eq!(a.checksum(), b.checksum());
        a.set_pixel(2, 2, 1.0, Color::new(7, 8, 9));
        assert_ne!(a.checksum(), b.checksum());
        b.set_pixel(2, 2, 1.0, Color::new(7, 8, 9));
        assert_eq!(a.checksum(), b.checksum());
        // Same contents, different geometry: still distinct.
        assert_ne!(Framebuffer::new(2, 8).checksum(), Framebuffer::new(8, 2).checksum());
    }
}
