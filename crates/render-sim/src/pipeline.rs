//! The rendering pipeline: scene graph in, shaded framebuffer and statistics out.

use cod_net::Micros;
use crane_scene::graph::SceneGraph;
use crane_scene::mesh::Color;
use serde::{Deserialize, Serialize};
use sim_math::Vec3;

use crate::camera::Camera;
use crate::cost::GpuCostModel;
use crate::framebuffer::Framebuffer;
use crate::frustum::Frustum;
use crate::raster::rasterize_triangle;

/// Statistics of one rendered frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RenderStats {
    /// Triangles in the scene graph.
    pub triangles_in_scene: usize,
    /// Triangles submitted after frustum culling of whole instances.
    pub triangles_submitted: usize,
    /// Triangles that produced at least one fragment.
    pub triangles_drawn: usize,
    /// Pixels written to the framebuffer (after the depth test).
    pub pixels_written: usize,
    /// Instances culled entirely by the frustum test.
    pub instances_culled: usize,
}

impl RenderStats {
    /// Frame time this workload would take on the given hardware model.
    pub fn frame_time(&self, model: &GpuCostModel) -> Micros {
        model.frame_time(self.triangles_submitted, self.pixels_written.max(1))
    }
}

/// A software renderer for one display channel.
#[derive(Debug)]
pub struct Renderer {
    framebuffer: Framebuffer,
    background: Color,
    light_direction: Vec3,
}

impl Renderer {
    /// Creates a renderer with a framebuffer of the given size.
    pub fn new(width: usize, height: usize) -> Renderer {
        Renderer {
            framebuffer: Framebuffer::new(width, height),
            background: Color::SKY,
            light_direction: Vec3::new(-0.4, -1.0, 0.3),
        }
    }

    /// The last rendered framebuffer.
    pub fn framebuffer(&self) -> &Framebuffer {
        &self.framebuffer
    }

    /// Sets the background (sky) color.
    pub fn set_background(&mut self, color: Color) {
        self.background = color;
    }

    /// Renders the scene from `camera` and returns the frame statistics.
    pub fn render(&mut self, scene: &SceneGraph, camera: &Camera) -> RenderStats {
        let mut stats =
            RenderStats { triangles_in_scene: scene.polygon_count(), ..Default::default() };
        self.framebuffer.clear(self.background);
        let view_projection = camera.view_projection();
        let frustum = Frustum::from_view_projection(&view_projection);

        for instance in scene.instances() {
            let aabb = match scene.instance_aabb(instance.node) {
                Some(aabb) => aabb,
                None => continue,
            };
            if !frustum.intersects_aabb(&aabb) {
                stats.instances_culled += 1;
                continue;
            }
            for i in 0..instance.mesh.polygon_count() {
                let local = instance.mesh.triangle(i);
                let world = [
                    instance.world.apply(local[0]),
                    instance.world.apply(local[1]),
                    instance.world.apply(local[2]),
                ];
                let normal = instance.world.apply_direction(instance.mesh.triangle_normal(i));
                stats.triangles_submitted += 1;
                let r = rasterize_triangle(
                    &mut self.framebuffer,
                    &view_projection,
                    world,
                    normal,
                    instance.mesh.color,
                    self.light_direction,
                );
                if r.drawn {
                    stats.triangles_drawn += 1;
                }
                stats.pixels_written += r.pixels_written;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crane_scene::world::TrainingWorld;

    #[test]
    fn training_world_renders_with_visible_geometry() {
        let world = TrainingWorld::build();
        let mut renderer = Renderer::new(160, 120);
        // Operator view from behind the crane's start position.
        let camera = Camera::look_at(
            Vec3::new(0.0, 6.0, -55.0),
            world.scene.world_transform(world.crane.chassis).translation + Vec3::new(0.0, 2.0, 0.0),
        );
        let stats = renderer.render(&world.scene, &camera);
        assert!(stats.triangles_in_scene > 2_500);
        assert!(stats.triangles_submitted > 0);
        assert!(stats.triangles_drawn > 50, "drawn {}", stats.triangles_drawn);
        assert!(stats.pixels_written > 1_000, "pixels {}", stats.pixels_written);
        assert!(
            renderer.framebuffer().covered_pixels(Color::SKY) > 1_000,
            "framebuffer mostly empty"
        );
    }

    #[test]
    fn frustum_culling_reduces_submitted_triangles() {
        let world = TrainingWorld::build();
        let mut renderer = Renderer::new(80, 60);
        // Looking straight down the course only a subset of the scene is visible.
        let camera = Camera::look_at(Vec3::new(0.0, 3.0, 50.0), Vec3::new(0.0, 2.0, 65.0));
        let stats = renderer.render(&world.scene, &camera);
        assert!(stats.instances_culled > 0, "nothing was culled");
        assert!(stats.triangles_submitted < stats.triangles_in_scene);
    }

    #[test]
    fn stats_convert_to_frame_time() {
        let stats = RenderStats {
            triangles_in_scene: 3_235,
            triangles_submitted: 3_235,
            triangles_drawn: 2_000,
            pixels_written: 200_000,
            instances_culled: 0,
        };
        let t = stats.frame_time(&GpuCostModel::tnt2_class());
        assert!(t.as_millis() > 30 && t.as_millis() < 90, "frame time {t}");
    }

    #[test]
    fn looking_at_empty_sky_draws_nothing() {
        let world = TrainingWorld::build();
        let mut renderer = Renderer::new(80, 60);
        let camera = Camera::look_at(Vec3::new(0.0, 500.0, 0.0), Vec3::new(0.0, 1_000.0, 0.0));
        let stats = renderer.render(&world.scene, &camera);
        assert_eq!(stats.pixels_written, 0);
        assert_eq!(renderer.framebuffer().covered_pixels(Color::SKY), 0);
    }
}
