//! Minimal JSON tree, emitter and parser shared by the workspace's report
//! writers (`BENCH_cod.json`, `SCENARIOS_cod.json`, `FLEET_cod.json`).
//!
//! The vendored `serde` is a marker-trait stub (the build environment cannot
//! reach crates.io), so the machine-readable artifacts are produced by this
//! hand-rolled crate instead: a small value tree with a pretty printer and a
//! recursive descent parser, enough for the report schemas and their
//! round-trip tests. When registry access exists the report types already
//! derive the serde markers, so swapping this crate for `serde_json` is
//! mechanical.
//!
//! Conventions shared by every report: objects keep member order, numbers are
//! `f64` (so `u64` quantities that may exceed 2^53 — seeds, fingerprints —
//! are serialized as hex *strings*), and non-finite numbers encode as `null`.

use std::fmt::Write as _;

/// A JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered member list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_value(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_value(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_value(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_value(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document, requiring it to span the whole input.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // `f64::Display` round-trips through `str::parse::<f64>` losslessly.
        let _ = write!(out, "{n}");
    } else {
        // JSON has no NaN/Inf; a null is the honest encoding.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_owned() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{keyword}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { offset: start, message: format!("invalid number '{text}'") })
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("\\u escape outside BMP scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty rest");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for doc in
            [Json::Null, Json::Bool(true), Json::Num(-12.5), Json::Str("a \"b\"\n\t\\".into())]
        {
            assert_eq!(Json::parse(&doc.to_pretty()).unwrap(), doc);
        }
    }

    #[test]
    fn nested_document_round_trips() {
        let doc = Json::Obj(vec![
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
            (
                "items".into(),
                Json::Arr(vec![
                    Json::Num(1.0),
                    Json::Obj(vec![("k".into(), Json::Str("µ-second".into()))]),
                ]),
            ),
        ]);
        assert_eq!(Json::parse(&doc.to_pretty()).unwrap(), doc);
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(Json::parse(r#""µs""#).unwrap(), Json::Str("µs".into()));
    }

    #[test]
    fn non_finite_numbers_encode_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_pretty(), "null\n");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
    }
}
