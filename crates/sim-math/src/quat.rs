//! Unit quaternions for representing 3D orientation.

use crate::mat::Mat3;
use crate::vec::Vec3;
use serde::{Deserialize, Serialize};
use std::ops::Mul;

/// A quaternion `w + xi + yj + zk`, normally kept at unit length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quat {
    pub w: f64,
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Default for Quat {
    fn default() -> Self {
        Quat::identity()
    }
}

impl Quat {
    /// The identity rotation.
    pub const fn identity() -> Quat {
        Quat { w: 1.0, x: 0.0, y: 0.0, z: 0.0 }
    }

    /// Creates a quaternion from raw components (not normalized).
    pub const fn new(w: f64, x: f64, y: f64, z: f64) -> Quat {
        Quat { w, x, y, z }
    }

    /// Creates a rotation of `angle` radians about `axis`.
    ///
    /// A zero axis yields the identity rotation.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Quat {
        match axis.normalized() {
            None => Quat::identity(),
            Some(a) => {
                let (s, c) = (angle / 2.0).sin_cos();
                Quat::new(c, a.x * s, a.y * s, a.z * s)
            }
        }
    }

    /// Creates a rotation from yaw (about Y), pitch (about X) and roll (about Z),
    /// applied in yaw → pitch → roll order. All angles in radians.
    pub fn from_yaw_pitch_roll(yaw: f64, pitch: f64, roll: f64) -> Quat {
        let qy = Quat::from_axis_angle(Vec3::unit_y(), yaw);
        let qp = Quat::from_axis_angle(Vec3::unit_x(), pitch);
        let qr = Quat::from_axis_angle(Vec3::unit_z(), roll);
        qy * qp * qr
    }

    /// Extracts `(yaw, pitch, roll)` matching [`Quat::from_yaw_pitch_roll`].
    pub fn to_yaw_pitch_roll(&self) -> (f64, f64, f64) {
        // Rotate basis vectors and recover the angles from the rotation matrix
        // entries of the Y-X-Z (yaw-pitch-roll) convention.
        let m = self.to_mat3();
        // column-major: m.cols[c] is image of basis vector c
        let m00 = m.cols[0].x;
        let m02 = m.cols[2].x;
        let m10 = m.cols[0].y;
        let m11 = m.cols[1].y;
        let m12 = m.cols[2].y;
        let m20 = m.cols[0].z;
        let m22 = m.cols[2].z;
        let pitch = (-m12).asin().clamp(-std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2);
        if m12.abs() < 0.999_999 {
            let yaw = m02.atan2(m22);
            let roll = m10.atan2(m11);
            (yaw, pitch, roll)
        } else {
            // Gimbal lock: pitch at +-90 degrees; put all remaining rotation in yaw.
            let yaw = (-m20).atan2(m00);
            (yaw, pitch, 0.0)
        }
    }

    /// Squared norm.
    pub fn norm_squared(&self) -> f64 {
        self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Norm.
    pub fn norm(&self) -> f64 {
        self.norm_squared().sqrt()
    }

    /// Returns the normalized quaternion; the identity if the norm is (nearly) zero.
    pub fn normalized(&self) -> Quat {
        let n = self.norm();
        if n <= crate::EPSILON {
            Quat::identity()
        } else {
            Quat::new(self.w / n, self.x / n, self.y / n, self.z / n)
        }
    }

    /// The conjugate (inverse for unit quaternions).
    pub fn conjugate(&self) -> Quat {
        Quat::new(self.w, -self.x, -self.y, -self.z)
    }

    /// Rotates a vector by this quaternion.
    pub fn rotate(&self, v: Vec3) -> Vec3 {
        let u = Vec3::new(self.x, self.y, self.z);
        let s = self.w;
        u * (2.0 * u.dot(v)) + v * (s * s - u.dot(u)) + u.cross(v) * (2.0 * s)
    }

    /// Converts to a 3x3 rotation matrix.
    pub fn to_mat3(&self) -> Mat3 {
        Mat3::from_cols(
            self.rotate(Vec3::unit_x()),
            self.rotate(Vec3::unit_y()),
            self.rotate(Vec3::unit_z()),
        )
    }

    /// Dot product of two quaternions.
    pub fn dot(&self, rhs: &Quat) -> f64 {
        self.w * rhs.w + self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Spherical linear interpolation between unit quaternions.
    ///
    /// `t` is not clamped; `t = 0` returns `self`, `t = 1` returns `rhs`
    /// (up to sign, taking the shortest arc).
    pub fn slerp(&self, rhs: &Quat, t: f64) -> Quat {
        let mut cos_theta = self.dot(rhs);
        let mut end = *rhs;
        if cos_theta < 0.0 {
            cos_theta = -cos_theta;
            end = Quat::new(-rhs.w, -rhs.x, -rhs.y, -rhs.z);
        }
        if cos_theta > 0.9995 {
            // Nearly identical: fall back to normalized lerp.
            return Quat::new(
                self.w + (end.w - self.w) * t,
                self.x + (end.x - self.x) * t,
                self.y + (end.y - self.y) * t,
                self.z + (end.z - self.z) * t,
            )
            .normalized();
        }
        let theta = cos_theta.clamp(-1.0, 1.0).acos();
        let sin_theta = theta.sin();
        let a = ((1.0 - t) * theta).sin() / sin_theta;
        let b = (t * theta).sin() / sin_theta;
        Quat::new(
            self.w * a + end.w * b,
            self.x * a + end.x * b,
            self.y * a + end.y * b,
            self.z * a + end.z * b,
        )
        .normalized()
    }

    /// Angular distance in radians between two unit quaternions.
    pub fn angle_to(&self, rhs: &Quat) -> f64 {
        let d = self.dot(rhs).abs().clamp(-1.0, 1.0);
        2.0 * d.acos()
    }
}

impl Mul for Quat {
    type Output = Quat;

    /// Hamilton product; `a * b` applies `b` first, then `a`.
    fn mul(self, r: Quat) -> Quat {
        Quat::new(
            self.w * r.w - self.x * r.x - self.y * r.y - self.z * r.z,
            self.w * r.x + self.x * r.w + self.y * r.z - self.z * r.y,
            self.w * r.y - self.x * r.z + self.y * r.w + self.z * r.x,
            self.w * r.z + self.x * r.y - self.y * r.x + self.z * r.w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn identity_rotation_is_noop() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!(Quat::identity().rotate(v).distance(v) < 1e-12);
    }

    #[test]
    fn axis_angle_quarter_turn_about_y() {
        let q = Quat::from_axis_angle(Vec3::unit_y(), FRAC_PI_2);
        let v = q.rotate(Vec3::unit_x());
        assert!(approx_eq(v.z, -1.0, 1e-12));
        assert!(approx_eq(v.x, 0.0, 1e-12));
    }

    #[test]
    fn zero_axis_gives_identity() {
        let q = Quat::from_axis_angle(Vec3::ZERO, 1.0);
        assert_eq!(q, Quat::identity());
    }

    #[test]
    fn conjugate_inverts_rotation() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 1.0, 0.0), 0.73);
        let v = Vec3::new(0.3, -0.7, 2.0);
        let back = q.conjugate().rotate(q.rotate(v));
        assert!(back.distance(v) < 1e-9);
    }

    #[test]
    fn slerp_endpoints_and_midpoint() {
        let a = Quat::identity();
        let b = Quat::from_axis_angle(Vec3::unit_y(), FRAC_PI_2);
        assert!(a.slerp(&b, 0.0).angle_to(&a) < 1e-9);
        assert!(a.slerp(&b, 1.0).angle_to(&b) < 1e-9);
        let mid = a.slerp(&b, 0.5);
        assert!(approx_eq(mid.angle_to(&a), FRAC_PI_4, 1e-9));
    }

    #[test]
    fn yaw_pitch_roll_roundtrip() {
        let (yaw, pitch, roll) = (0.4, -0.3, 0.9);
        let q = Quat::from_yaw_pitch_roll(yaw, pitch, roll);
        let (y2, p2, r2) = q.to_yaw_pitch_roll();
        assert!(approx_eq(yaw, y2, 1e-9));
        assert!(approx_eq(pitch, p2, 1e-9));
        assert!(approx_eq(roll, r2, 1e-9));
    }

    #[test]
    fn mat3_conversion_matches_rotate() {
        let q = Quat::from_yaw_pitch_roll(1.0, 0.2, -0.5);
        let m = q.to_mat3();
        let v = Vec3::new(0.5, 1.5, -2.0);
        assert!(m.transform(v).distance(q.rotate(v)) < 1e-9);
    }

    fn arb_quat() -> impl Strategy<Value = Quat> {
        (-PI..PI, -1.0..1.0f64, -PI..PI).prop_map(|(a, b, c)| Quat::from_yaw_pitch_roll(a, b, c))
    }

    proptest! {
        #[test]
        fn prop_rotation_preserves_length(q in arb_quat(), x in -10.0..10.0f64, y in -10.0..10.0f64, z in -10.0..10.0f64) {
            let v = Vec3::new(x, y, z);
            prop_assert!((q.rotate(v).length() - v.length()).abs() < 1e-9);
        }

        #[test]
        fn prop_composition_matches_sequential(a in arb_quat(), b in arb_quat(), x in -5.0..5.0f64) {
            let v = Vec3::new(x, 1.0, -2.0);
            let lhs = (a * b).rotate(v);
            let rhs = a.rotate(b.rotate(v));
            prop_assert!(lhs.distance(rhs) < 1e-9);
        }

        #[test]
        fn prop_unit_norm(q in arb_quat()) {
            prop_assert!((q.norm() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_normalized_restores_unit_length(w in -4.0..4.0f64, x in -4.0..4.0f64,
                                                y in -4.0..4.0f64, z in -4.0..4.0f64) {
            let q = Quat::new(w, x, y, z);
            let n = q.normalized();
            // Any raw quaternion normalizes to exact unit length (or identity
            // for the near-zero case).
            prop_assert!((n.norm() - 1.0).abs() < 1e-12);
        }

        #[test]
        fn prop_slerp_preserves_unit_norm(a in arb_quat(), b in arb_quat(), t in 0.0..1.0f64) {
            let s = a.slerp(&b, t);
            prop_assert!((s.norm() - 1.0).abs() < 1e-9, "slerp denormalized: {}", s.norm());
        }

        #[test]
        fn prop_slerp_angle_is_monotone_along_t(a in arb_quat(), b in arb_quat()) {
            // The angular distance from the start grows with t on [0, 1].
            let quarter = a.slerp(&b, 0.25);
            let half = a.slerp(&b, 0.5);
            let full = a.slerp(&b, 1.0);
            prop_assert!(a.angle_to(&quarter) <= a.angle_to(&half) + 1e-9);
            prop_assert!(a.angle_to(&half) <= a.angle_to(&full) + 1e-9);
        }

        #[test]
        fn prop_unit_norm_preserved_across_1k_composed_steps(axis_x in -1.0..1.0f64,
                                                             axis_y in -1.0..1.0f64,
                                                             angle in 0.001..0.1f64) {
            // Repeatedly composing a small per-frame rotation (as the dynamics
            // module does every step) must not drift off the unit sphere when
            // renormalizing, which is what the visual channels rely on.
            let step = Quat::from_axis_angle(Vec3::new(axis_x, axis_y, 1.0), angle);
            let mut q = Quat::identity();
            for _ in 0..1_000 {
                q = (step * q).normalized();
            }
            prop_assert!((q.norm() - 1.0).abs() < 1e-12, "drifted to {}", q.norm());
            // The orientation stays a genuine rotation: lengths are preserved.
            let v = Vec3::new(0.3, -1.2, 2.0);
            prop_assert!((q.rotate(v).length() - v.length()).abs() < 1e-9);
        }
    }
}
