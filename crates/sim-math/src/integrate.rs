//! Fixed-step numerical integrators used by the dynamics module.

/// One classical fourth-order Runge–Kutta step for a first-order ODE system.
///
/// `state` is the current state vector, `deriv(t, state)` returns its time
/// derivative, `t` is the current time and `dt` the step size. Returns the new
/// state at `t + dt`.
///
/// The lift-hook pendulum (paper §3.6) is integrated with this routine.
pub fn rk4_step<F>(state: &[f64], deriv: F, t: f64, dt: f64) -> Vec<f64>
where
    F: Fn(f64, &[f64]) -> Vec<f64>,
{
    let n = state.len();
    let k1 = deriv(t, state);
    debug_assert_eq!(k1.len(), n, "derivative dimension mismatch");

    let mut tmp = vec![0.0; n];
    for i in 0..n {
        tmp[i] = state[i] + 0.5 * dt * k1[i];
    }
    let k2 = deriv(t + 0.5 * dt, &tmp);

    for i in 0..n {
        tmp[i] = state[i] + 0.5 * dt * k2[i];
    }
    let k3 = deriv(t + 0.5 * dt, &tmp);

    for i in 0..n {
        tmp[i] = state[i] + dt * k3[i];
    }
    let k4 = deriv(t + dt, &tmp);

    let mut out = vec![0.0; n];
    for i in 0..n {
        out[i] = state[i] + dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
    out
}

/// One semi-implicit (symplectic) Euler step for a second-order system with
/// position `x`, velocity `v` and acceleration `a(x, v)`.
///
/// Returns the updated `(x, v)`. Used for the vehicle model where energy
/// behaviour matters more than per-step accuracy.
pub fn semi_implicit_euler_step<F>(x: f64, v: f64, accel: F, dt: f64) -> (f64, f64)
where
    F: Fn(f64, f64) -> f64,
{
    let a = accel(x, v);
    let v_new = v + a * dt;
    let x_new = x + v_new * dt;
    (x_new, v_new)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simple harmonic oscillator: x'' = -x, analytic solution cos(t).
    fn sho_deriv(_t: f64, s: &[f64]) -> Vec<f64> {
        vec![s[1], -s[0]]
    }

    #[test]
    fn rk4_tracks_harmonic_oscillator() {
        let mut state = vec![1.0, 0.0];
        let dt = 0.01;
        let steps = 628; // ~ one period (2*pi)
        for i in 0..steps {
            state = rk4_step(&state, sho_deriv, i as f64 * dt, dt);
        }
        let t = steps as f64 * dt;
        assert!((state[0] - t.cos()).abs() < 1e-6);
        assert!((state[1] + t.sin()).abs() < 1e-6);
    }

    #[test]
    fn rk4_exact_for_constant_derivative() {
        let state = vec![2.0];
        let next = rk4_step(&state, |_, _| vec![3.0], 0.0, 0.5);
        assert!((next[0] - 3.5).abs() < 1e-12);
    }

    #[test]
    fn semi_implicit_euler_bounded_energy() {
        // Spring-mass: a = -x. Symplectic Euler should keep the orbit bounded.
        let (mut x, mut v) = (1.0, 0.0);
        let dt = 0.01;
        let mut max_energy: f64 = 0.0;
        for _ in 0..100_000 {
            let (nx, nv) = semi_implicit_euler_step(x, v, |x, _| -x, dt);
            x = nx;
            v = nv;
            max_energy = max_energy.max(0.5 * (x * x + v * v));
        }
        assert!(max_energy < 0.6, "energy drifted: {max_energy}");
    }

    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_rk4_energy_bounded_across_1k_steps(x0 in -2.0..2.0f64, v0 in -2.0..2.0f64,
                                                   dt in 0.001..0.02f64) {
            // Harmonic oscillator from a random initial condition: total energy
            // 0.5*(x^2 + v^2) must stay within a whisker of its initial value
            // for a thousand RK4 steps (RK4 damps very slightly, never grows).
            let mut state = vec![x0, v0];
            let e0 = 0.5 * (x0 * x0 + v0 * v0);
            for i in 0..1_000 {
                state = rk4_step(&state, sho_deriv, i as f64 * dt, dt);
                let e = 0.5 * (state[0] * state[0] + state[1] * state[1]);
                prop_assert!(e <= e0 * 1.000_001 + 1e-12, "energy grew: {e} > {e0}");
                prop_assert!(e >= e0 * 0.99 - 1e-12, "energy collapsed: {e} < {e0}");
            }
        }

        #[test]
        fn prop_symplectic_euler_energy_bounded_across_1k_steps(x0 in -2.0..2.0f64,
                                                                v0 in -2.0..2.0f64,
                                                                omega in 0.5..2.0f64) {
            // Spring with random stiffness: the symplectic integrator's energy
            // oscillates but stays bounded (no secular drift).
            let dt = 0.01;
            let (mut x, mut v) = (x0, v0);
            let k = omega * omega;
            let e0 = 0.5 * (k * x0 * x0 + v0 * v0);
            for _ in 0..1_000 {
                let (nx, nv) = semi_implicit_euler_step(x, v, |x, _| -k * x, dt);
                x = nx;
                v = nv;
                let e = 0.5 * (k * x * x + v * v);
                prop_assert!(e <= e0 * 1.05 + 1e-9, "energy drifted: {e} vs {e0}");
            }
        }

        #[test]
        fn prop_rk4_linear_system_matches_exact_solution(x0 in -3.0..3.0f64,
                                                         rate in -1.0..1.0f64) {
            // x' = rate * x has the exact solution x0 * exp(rate * t).
            let dt = 0.01;
            let mut s = vec![x0];
            for i in 0..100 {
                s = rk4_step(&s, |_, s| vec![rate * s[0]], i as f64 * dt, dt);
            }
            let exact = x0 * (rate * 1.0f64).exp();
            prop_assert!((s[0] - exact).abs() < 1e-8, "rk4 {} vs exact {exact}", s[0]);
        }
    }

    #[test]
    fn rk4_converges_with_smaller_steps() {
        // Error at t=1 for x' = x should shrink roughly as dt^4.
        let run = |dt: f64| {
            let mut s = vec![1.0];
            let steps = (1.0 / dt).round() as usize;
            for i in 0..steps {
                s = rk4_step(&s, |_, s| vec![s[0]], i as f64 * dt, dt);
            }
            (s[0] - 1f64.exp()).abs()
        };
        let coarse = run(0.1);
        let fine = run(0.05);
        assert!(fine < coarse / 8.0, "coarse={coarse}, fine={fine}");
    }
}
