//! A stable 64-bit FNV-1a hasher.
//!
//! Golden-image checksums and telemetry-trace fingerprints must hash
//! identically across runs, platforms and Rust versions, which the standard
//! library's `DefaultHasher` does not guarantee. Both `render-sim` and the
//! core telemetry use this one implementation so the two can never drift.

/// Incremental FNV-1a over bytes and little-endian integers.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// Starts a hash at the FNV-1a offset basis.
    pub const fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.write_u8(*b);
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, byte: u8) {
        self.0 ^= u64::from(byte);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    /// Feeds a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_fnv1a_reference_vectors() {
        // Classic test vectors for 64-bit FNV-1a.
        let hash = |s: &str| {
            let mut h = Fnv1a::new();
            h.write_bytes(s.as_bytes());
            h.finish()
        };
        assert_eq!(hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash("foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn write_u64_is_order_sensitive() {
        let mut a = Fnv1a::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv1a::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }
}
