//! Rigid-body transform (translation + rotation).

use crate::mat::Mat4;
use crate::quat::Quat;
use crate::vec::Vec3;
use serde::{Deserialize, Serialize};

/// A rigid transform: rotation followed by translation.
///
/// Used for scene-graph node poses, the crane chassis pose, and the motion
/// platform pose.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Transform {
    /// Translation component.
    pub translation: Vec3,
    /// Rotation component (unit quaternion).
    pub rotation: Quat,
}

impl Transform {
    /// The identity transform.
    pub fn identity() -> Transform {
        Transform { translation: Vec3::ZERO, rotation: Quat::identity() }
    }

    /// Creates a transform from a translation and rotation.
    pub fn new(translation: Vec3, rotation: Quat) -> Transform {
        Transform { translation, rotation }
    }

    /// Creates a pure translation.
    pub fn from_translation(translation: Vec3) -> Transform {
        Transform { translation, rotation: Quat::identity() }
    }

    /// Creates a pure rotation.
    pub fn from_rotation(rotation: Quat) -> Transform {
        Transform { translation: Vec3::ZERO, rotation }
    }

    /// Applies the transform to a point.
    pub fn apply(&self, p: Vec3) -> Vec3 {
        self.rotation.rotate(p) + self.translation
    }

    /// Applies only the rotation to a direction.
    pub fn apply_direction(&self, d: Vec3) -> Vec3 {
        self.rotation.rotate(d)
    }

    /// Composes two transforms: `self.then(child)` maps child-local points into
    /// the parent space of `self`.
    pub fn then(&self, child: &Transform) -> Transform {
        Transform {
            translation: self.apply(child.translation),
            rotation: self.rotation * child.rotation,
        }
    }

    /// The inverse transform.
    pub fn inverse(&self) -> Transform {
        let inv_rot = self.rotation.conjugate();
        Transform { translation: inv_rot.rotate(-self.translation), rotation: inv_rot }
    }

    /// Interpolates between two rigid transforms (lerp for translation, slerp
    /// for rotation). `t` outside `[0, 1]` extrapolates linearly for the
    /// translation and clamps along the arc for the rotation.
    pub fn interpolate(&self, other: &Transform, t: f64) -> Transform {
        Transform {
            translation: self.translation.lerp(other.translation, t),
            rotation: self.rotation.slerp(&other.rotation, t),
        }
    }

    /// Converts the transform into a 4x4 matrix.
    pub fn to_mat4(&self) -> Mat4 {
        Mat4::translation(self.translation) * Mat4::from_mat3(&self.rotation.to_mat3())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn apply_rotates_then_translates() {
        let t = Transform::new(
            Vec3::new(10.0, 0.0, 0.0),
            Quat::from_axis_angle(Vec3::unit_y(), FRAC_PI_2),
        );
        let p = t.apply(Vec3::unit_x());
        assert!((p.x - 10.0).abs() < 1e-9);
        assert!((p.z + 1.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_undoes_transform() {
        let t = Transform::new(Vec3::new(1.0, 2.0, 3.0), Quat::from_yaw_pitch_roll(0.3, -0.8, 1.2));
        let p = Vec3::new(-4.0, 5.0, 0.5);
        assert!(t.inverse().apply(t.apply(p)).distance(p) < 1e-9);
    }

    #[test]
    fn composition_matches_sequential_application() {
        let a =
            Transform::new(Vec3::new(1.0, 0.0, 0.0), Quat::from_axis_angle(Vec3::unit_y(), 0.5));
        let b =
            Transform::new(Vec3::new(0.0, 2.0, 0.0), Quat::from_axis_angle(Vec3::unit_x(), -0.3));
        let p = Vec3::new(0.7, -1.1, 2.2);
        assert!(a.then(&b).apply(p).distance(a.apply(b.apply(p))) < 1e-9);
    }

    #[test]
    fn interpolation_endpoints() {
        let a = Transform::from_translation(Vec3::ZERO);
        let b =
            Transform::new(Vec3::new(2.0, 0.0, 0.0), Quat::from_axis_angle(Vec3::unit_y(), 1.0));
        assert!(a.interpolate(&b, 0.0).translation.distance(a.translation) < 1e-12);
        assert!(a.interpolate(&b, 1.0).translation.distance(b.translation) < 1e-12);
        let mid = a.interpolate(&b, 0.5);
        assert!((mid.translation.x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn to_mat4_matches_apply() {
        let t =
            Transform::new(Vec3::new(3.0, -1.0, 2.0), Quat::from_yaw_pitch_roll(1.1, 0.2, -0.4));
        let p = Vec3::new(0.5, 0.6, 0.7);
        assert!(t.to_mat4().transform_point(p).distance(t.apply(p)) < 1e-9);
    }
}
