//! Column-major 3x3 and 4x4 matrices.

use crate::vec::Vec3;
use serde::{Deserialize, Serialize};
use std::ops::Mul;

/// A 3x3 matrix stored as three columns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Columns of the matrix.
    pub cols: [Vec3; 3],
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::identity()
    }
}

impl Mat3 {
    /// The identity matrix.
    pub fn identity() -> Mat3 {
        Mat3 { cols: [Vec3::unit_x(), Vec3::unit_y(), Vec3::unit_z()] }
    }

    /// Builds a matrix from three column vectors.
    pub fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Mat3 {
        Mat3 { cols: [c0, c1, c2] }
    }

    /// Rotation about the X axis by `angle` radians.
    pub fn rotation_x(angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_cols(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, c, s), Vec3::new(0.0, -s, c))
    }

    /// Rotation about the Y axis by `angle` radians.
    pub fn rotation_y(angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_cols(Vec3::new(c, 0.0, -s), Vec3::new(0.0, 1.0, 0.0), Vec3::new(s, 0.0, c))
    }

    /// Rotation about the Z axis by `angle` radians.
    pub fn rotation_z(angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_cols(Vec3::new(c, s, 0.0), Vec3::new(-s, c, 0.0), Vec3::new(0.0, 0.0, 1.0))
    }

    /// Transposed matrix.
    pub fn transposed(&self) -> Mat3 {
        Mat3::from_cols(
            Vec3::new(self.cols[0].x, self.cols[1].x, self.cols[2].x),
            Vec3::new(self.cols[0].y, self.cols[1].y, self.cols[2].y),
            Vec3::new(self.cols[0].z, self.cols[1].z, self.cols[2].z),
        )
    }

    /// Determinant of the matrix.
    pub fn determinant(&self) -> f64 {
        self.cols[0].dot(self.cols[1].cross(self.cols[2]))
    }

    /// Transforms a vector.
    pub fn transform(&self, v: Vec3) -> Vec3 {
        self.cols[0] * v.x + self.cols[1] * v.y + self.cols[2] * v.z
    }
}

impl Mul for Mat3 {
    type Output = Mat3;

    fn mul(self, rhs: Mat3) -> Mat3 {
        Mat3::from_cols(
            self.transform(rhs.cols[0]),
            self.transform(rhs.cols[1]),
            self.transform(rhs.cols[2]),
        )
    }
}

/// A 4x4 matrix stored row-major as `m[row][col]`, used by the rendering pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat4 {
    /// Rows of the matrix.
    pub m: [[f64; 4]; 4],
}

impl Default for Mat4 {
    fn default() -> Self {
        Mat4::identity()
    }
}

impl Mat4 {
    /// The identity matrix.
    pub fn identity() -> Mat4 {
        let mut m = [[0.0; 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        Mat4 { m }
    }

    /// Translation matrix.
    pub fn translation(t: Vec3) -> Mat4 {
        let mut m = Mat4::identity();
        m.m[0][3] = t.x;
        m.m[1][3] = t.y;
        m.m[2][3] = t.z;
        m
    }

    /// Uniform or per-axis scale matrix.
    pub fn scale(s: Vec3) -> Mat4 {
        let mut m = Mat4::identity();
        m.m[0][0] = s.x;
        m.m[1][1] = s.y;
        m.m[2][2] = s.z;
        m
    }

    /// Embeds a 3x3 rotation into a 4x4 matrix.
    pub fn from_mat3(r: &Mat3) -> Mat4 {
        let mut m = Mat4::identity();
        for col in 0..3 {
            m.m[0][col] = r.cols[col].x;
            m.m[1][col] = r.cols[col].y;
            m.m[2][col] = r.cols[col].z;
        }
        m
    }

    /// Right-handed perspective projection.
    ///
    /// `fov_y` is the vertical field of view in radians, `aspect` is width/height,
    /// `near`/`far` are the positive clip-plane distances.
    ///
    /// # Panics
    ///
    /// Panics if `near <= 0`, `far <= near` or `aspect <= 0`.
    pub fn perspective(fov_y: f64, aspect: f64, near: f64, far: f64) -> Mat4 {
        assert!(near > 0.0 && far > near && aspect > 0.0, "invalid projection parameters");
        let f = 1.0 / (fov_y / 2.0).tan();
        let mut m = Mat4 { m: [[0.0; 4]; 4] };
        m.m[0][0] = f / aspect;
        m.m[1][1] = f;
        m.m[2][2] = (far + near) / (near - far);
        m.m[2][3] = (2.0 * far * near) / (near - far);
        m.m[3][2] = -1.0;
        m
    }

    /// Right-handed look-at view matrix.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Mat4 {
        let forward = (target - eye).normalized_or(Vec3::new(0.0, 0.0, -1.0));
        let right = forward.cross(up).normalized_or(Vec3::unit_x());
        let true_up = right.cross(forward);
        let mut m = Mat4::identity();
        m.m[0] = [right.x, right.y, right.z, -right.dot(eye)];
        m.m[1] = [true_up.x, true_up.y, true_up.z, -true_up.dot(eye)];
        m.m[2] = [-forward.x, -forward.y, -forward.z, forward.dot(eye)];
        m
    }

    /// Transforms a point (w = 1) and performs the perspective divide.
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        let (v, w) = self.transform_homogeneous(p);
        if w.abs() <= crate::EPSILON {
            v
        } else {
            v / w
        }
    }

    /// Transforms a point (w = 1) returning the un-divided result and `w`.
    pub fn transform_homogeneous(&self, p: Vec3) -> (Vec3, f64) {
        let x = self.m[0][0] * p.x + self.m[0][1] * p.y + self.m[0][2] * p.z + self.m[0][3];
        let y = self.m[1][0] * p.x + self.m[1][1] * p.y + self.m[1][2] * p.z + self.m[1][3];
        let z = self.m[2][0] * p.x + self.m[2][1] * p.y + self.m[2][2] * p.z + self.m[2][3];
        let w = self.m[3][0] * p.x + self.m[3][1] * p.y + self.m[3][2] * p.z + self.m[3][3];
        (Vec3::new(x, y, z), w)
    }

    /// Transforms a direction (w = 0); translation is ignored.
    pub fn transform_direction(&self, d: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0][0] * d.x + self.m[0][1] * d.y + self.m[0][2] * d.z,
            self.m[1][0] * d.x + self.m[1][1] * d.y + self.m[1][2] * d.z,
            self.m[2][0] * d.x + self.m[2][1] * d.y + self.m[2][2] * d.z,
        )
    }
}

impl Mul for Mat4 {
    type Output = Mat4;

    fn mul(self, rhs: Mat4) -> Mat4 {
        let mut out = Mat4 { m: [[0.0; 4]; 4] };
        for r in 0..4 {
            for c in 0..4 {
                out.m[r][c] = (0..4).map(|k| self.m[r][k] * rhs.m[k][c]).sum();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn mat3_identity_is_noop() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Mat3::identity().transform(v), v);
    }

    #[test]
    fn mat3_rotation_y_quarter_turn() {
        let v = Mat3::rotation_y(FRAC_PI_2).transform(Vec3::unit_x());
        assert!(approx_eq(v.x, 0.0, 1e-12));
        assert!(approx_eq(v.z, -1.0, 1e-12));
    }

    #[test]
    fn mat3_rotation_determinant_is_one() {
        for a in [0.1, 0.7, 2.3] {
            assert!(approx_eq(Mat3::rotation_x(a).determinant(), 1.0, 1e-12));
            assert!(approx_eq(Mat3::rotation_z(a).determinant(), 1.0, 1e-12));
        }
    }

    #[test]
    fn mat4_translation_moves_points_not_directions() {
        let t = Mat4::translation(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(t.transform_point(Vec3::ZERO), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(t.transform_direction(Vec3::unit_x()), Vec3::unit_x());
    }

    #[test]
    fn mat4_mul_composes() {
        let a = Mat4::translation(Vec3::new(1.0, 0.0, 0.0));
        let b = Mat4::translation(Vec3::new(0.0, 2.0, 0.0));
        let p = (a * b).transform_point(Vec3::ZERO);
        assert_eq!(p, Vec3::new(1.0, 2.0, 0.0));
    }

    #[test]
    fn look_at_centers_target_on_axis() {
        let view = Mat4::look_at(Vec3::new(0.0, 0.0, 10.0), Vec3::ZERO, Vec3::unit_y());
        let p = view.transform_point(Vec3::ZERO);
        assert!(approx_eq(p.x, 0.0, 1e-9));
        assert!(approx_eq(p.y, 0.0, 1e-9));
        assert!(approx_eq(p.z, -10.0, 1e-9));
    }

    #[test]
    fn perspective_maps_near_plane_center() {
        let proj = Mat4::perspective(FRAC_PI_2, 1.0, 1.0, 100.0);
        let p = proj.transform_point(Vec3::new(0.0, 0.0, -1.0));
        assert!(approx_eq(p.z, -1.0, 1e-9));
    }

    #[test]
    #[should_panic]
    fn perspective_rejects_bad_params() {
        let _ = Mat4::perspective(1.0, 1.0, -1.0, 10.0);
    }
}
