//! Lockstep (structure-of-arrays) variants of the fixed-step integrators.
//!
//! The serving layer advances same-shape sessions frame-major: one pass per
//! subsystem across N sessions instead of N passes over one session. These
//! kernels are that pattern for the integrators of [`crate::integrate`]: each
//! lane performs exactly the scalar routine's arithmetic in exactly its
//! order, so a batch of N lanes is bit-identical to N scalar calls — the
//! property the fleet's determinism contract rides on. The payoff is loop
//! structure (one sweep amortizes call and closure overhead and keeps lane
//! state hot), never reordered floating point.

use crate::integrate::rk4_step;

/// One semi-implicit (symplectic) Euler step across every lane.
///
/// Lane `i` updates `(xs[i], vs[i])` exactly like
/// [`crate::integrate::semi_implicit_euler_step`] with acceleration
/// `accel(i, x, v)`: the velocity integrates first, the position uses the new
/// velocity.
///
/// # Panics
///
/// Panics if `xs` and `vs` differ in length.
pub fn semi_implicit_euler_step_batch<F>(xs: &mut [f64], vs: &mut [f64], accel: F, dt: f64)
where
    F: Fn(usize, f64, f64) -> f64,
{
    assert_eq!(xs.len(), vs.len(), "lockstep lanes need matching lengths");
    for i in 0..xs.len() {
        let a = accel(i, xs[i], vs[i]);
        let v_new = vs[i] + a * dt;
        let x_new = xs[i] + v_new * dt;
        xs[i] = x_new;
        vs[i] = v_new;
    }
}

/// One classical RK4 step across every lane, in place.
///
/// Lane `i` advances `states[i]` exactly like [`rk4_step`] with derivative
/// `deriv(i, t, state)`.
pub fn rk4_step_batch<F>(states: &mut [Vec<f64>], deriv: F, t: f64, dt: f64)
where
    F: Fn(usize, f64, &[f64]) -> Vec<f64>,
{
    for (i, state) in states.iter_mut().enumerate() {
        *state = rk4_step(state, |t, s| deriv(i, t, s), t, dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::semi_implicit_euler_step;

    #[test]
    fn euler_batch_is_bit_identical_to_scalar_lanes() {
        // Spring-mass lanes with lane-dependent stiffness.
        let mut xs: Vec<f64> = (0..16).map(|i| 0.1 * i as f64 - 0.7).collect();
        let mut vs: Vec<f64> = (0..16).map(|i| 0.03 * i as f64).collect();
        let mut xs_ref = xs.clone();
        let mut vs_ref = vs.clone();
        let dt = 1.0 / 240.0;
        for _ in 0..1_000 {
            semi_implicit_euler_step_batch(
                &mut xs,
                &mut vs,
                |i, x, v| -(1.0 + i as f64) * x - 0.05 * v,
                dt,
            );
            for i in 0..xs_ref.len() {
                let (x, v) = semi_implicit_euler_step(
                    xs_ref[i],
                    vs_ref[i],
                    |x, v| -(1.0 + i as f64) * x - 0.05 * v,
                    dt,
                );
                xs_ref[i] = x;
                vs_ref[i] = v;
            }
        }
        for i in 0..xs.len() {
            assert_eq!(xs[i].to_bits(), xs_ref[i].to_bits(), "lane {i} position diverged");
            assert_eq!(vs[i].to_bits(), vs_ref[i].to_bits(), "lane {i} velocity diverged");
        }
    }

    #[test]
    fn rk4_batch_is_bit_identical_to_scalar_lanes() {
        // Harmonic oscillators with lane-dependent frequency.
        let mut states: Vec<Vec<f64>> = (0..8).map(|i| vec![1.0 + 0.1 * i as f64, 0.0]).collect();
        let mut reference = states.clone();
        let dt = 0.01;
        for k in 0..200 {
            let t = k as f64 * dt;
            rk4_step_batch(&mut states, |i, _t, s| vec![s[1], -(1.0 + i as f64) * s[0]], t, dt);
            for (i, state) in reference.iter_mut().enumerate() {
                *state = rk4_step(state, |_t, s| vec![s[1], -(1.0 + i as f64) * s[0]], t, dt);
            }
        }
        for (i, (a, b)) in states.iter().zip(reference.iter()).enumerate() {
            assert_eq!(a[0].to_bits(), b[0].to_bits(), "lane {i} diverged");
            assert_eq!(a[1].to_bits(), b[1].to_bits(), "lane {i} diverged");
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_lane_lengths_rejected() {
        let mut xs = vec![0.0; 3];
        let mut vs = vec![0.0; 2];
        semi_implicit_euler_step_batch(&mut xs, &mut vs, |_, _, _| 0.0, 0.01);
    }
}
