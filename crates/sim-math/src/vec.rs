//! 2D and 3D vector types.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A two-dimensional vector of `f64` components.
///
/// Used for screen-space coordinates, terrain grid coordinates, and planar
/// (plan-view) geometry such as the support polygon of the crane outriggers.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    pub x: f64,
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a new vector from components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec2) -> f64 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// Z component of the 3D cross product of the two vectors embedded in the plane.
    pub fn perp_dot(self, rhs: Vec2) -> f64 {
        self.x * rhs.y - self.y * rhs.x
    }

    /// Euclidean length.
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (cheaper than [`Vec2::length`]).
    pub fn length_squared(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another point.
    pub fn distance(self, rhs: Vec2) -> f64 {
        (self - rhs).length()
    }

    /// Returns the vector scaled to unit length, or `None` if it is (nearly) zero.
    pub fn normalized(self) -> Option<Vec2> {
        let len = self.length();
        if len <= crate::EPSILON {
            None
        } else {
            Some(self / len)
        }
    }

    /// Rotates the vector counter-clockwise by `angle` radians.
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }
}

/// A three-dimensional vector of `f64` components.
///
/// The workspace convention is a right-handed coordinate system with **Y up**:
/// `x` east, `y` up, `z` south. Ground-plane logic therefore works on `(x, z)`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 { x: 1.0, y: 1.0, z: 1.0 };

    /// Creates a new vector from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Unit vector along +X.
    pub const fn unit_x() -> Self {
        Vec3::new(1.0, 0.0, 0.0)
    }

    /// Unit vector along +Y (up).
    pub const fn unit_y() -> Self {
        Vec3::new(0.0, 1.0, 0.0)
    }

    /// Unit vector along +Z.
    pub const fn unit_z() -> Self {
        Vec3::new(0.0, 0.0, 1.0)
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean length.
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length.
    pub fn length_squared(self) -> f64 {
        self.dot(self)
    }

    /// Distance between two points.
    pub fn distance(self, rhs: Vec3) -> f64 {
        (self - rhs).length()
    }

    /// Squared distance between two points.
    pub fn distance_squared(self, rhs: Vec3) -> f64 {
        (self - rhs).length_squared()
    }

    /// Returns the vector scaled to unit length, or `None` if it is (nearly) zero.
    pub fn normalized(self) -> Option<Vec3> {
        let len = self.length();
        if len <= crate::EPSILON {
            None
        } else {
            Some(self / len)
        }
    }

    /// Returns the vector scaled to unit length, falling back to `fallback` for
    /// a (nearly) zero vector.
    pub fn normalized_or(self, fallback: Vec3) -> Vec3 {
        self.normalized().unwrap_or(fallback)
    }

    /// Component-wise multiplication.
    pub fn component_mul(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Component-wise minimum.
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// The largest component.
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Linear interpolation from `self` to `rhs` by `t` (not clamped).
    pub fn lerp(self, rhs: Vec3, t: f64) -> Vec3 {
        self + (rhs - self) * t
    }

    /// Projects `self` onto `onto`. Returns the zero vector when `onto` is zero.
    pub fn project_onto(self, onto: Vec3) -> Vec3 {
        let d = onto.length_squared();
        if d <= crate::EPSILON {
            Vec3::ZERO
        } else {
            onto * (self.dot(onto) / d)
        }
    }

    /// Horizontal (ground-plane) projection, i.e. the vector with the Y component zeroed.
    pub fn horizontal(self) -> Vec3 {
        Vec3::new(self.x, 0.0, self.z)
    }

    /// The `(x, z)` ground-plane coordinates as a [`Vec2`].
    pub fn xz(self) -> Vec2 {
        Vec2::new(self.x, self.z)
    }

    /// Returns true when every component is finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

macro_rules! impl_vec_ops {
    ($ty:ident { $($f:ident),+ }) => {
        impl Add for $ty {
            type Output = $ty;
            fn add(self, rhs: $ty) -> $ty { $ty { $($f: self.$f + rhs.$f),+ } }
        }
        impl AddAssign for $ty {
            fn add_assign(&mut self, rhs: $ty) { $(self.$f += rhs.$f;)+ }
        }
        impl Sub for $ty {
            type Output = $ty;
            fn sub(self, rhs: $ty) -> $ty { $ty { $($f: self.$f - rhs.$f),+ } }
        }
        impl SubAssign for $ty {
            fn sub_assign(&mut self, rhs: $ty) { $(self.$f -= rhs.$f;)+ }
        }
        impl Mul<f64> for $ty {
            type Output = $ty;
            fn mul(self, rhs: f64) -> $ty { $ty { $($f: self.$f * rhs),+ } }
        }
        impl Mul<$ty> for f64 {
            type Output = $ty;
            fn mul(self, rhs: $ty) -> $ty { rhs * self }
        }
        impl MulAssign<f64> for $ty {
            fn mul_assign(&mut self, rhs: f64) { $(self.$f *= rhs;)+ }
        }
        impl Div<f64> for $ty {
            type Output = $ty;
            fn div(self, rhs: f64) -> $ty { $ty { $($f: self.$f / rhs),+ } }
        }
        impl DivAssign<f64> for $ty {
            fn div_assign(&mut self, rhs: f64) { $(self.$f /= rhs;)+ }
        }
        impl Neg for $ty {
            type Output = $ty;
            fn neg(self) -> $ty { $ty { $($f: -self.$f),+ } }
        }
        impl Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                iter.fold($ty::default(), |acc, v| acc + v)
            }
        }
    };
}

impl_vec_ops!(Vec2 { x, y });
impl_vec_ops!(Vec3 { x, y, z });

impl Index<usize> for Vec3 {
    type Output = f64;

    /// Indexes the vector components as `0 => x`, `1 => y`, `2 => z`.
    ///
    /// # Panics
    ///
    /// Panics if `index > 2`.
    fn index(&self, index: usize) -> &f64 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {index}"),
        }
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(v: [f64; 3]) -> Self {
        Vec3::new(v[0], v[1], v[2])
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

impl From<[f64; 2]> for Vec2 {
    fn from(v: [f64; 2]) -> Self {
        Vec2::new(v[0], v[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use proptest::prelude::*;

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        let c = a.cross(b);
        assert!(approx_eq(c.dot(a), 0.0, 1e-9));
        assert!(approx_eq(c.dot(b), 0.0, 1e-9));
    }

    #[test]
    fn unit_vectors_cross_correctly() {
        assert_eq!(Vec3::unit_x().cross(Vec3::unit_y()), Vec3::unit_z());
        assert_eq!(Vec3::unit_y().cross(Vec3::unit_z()), Vec3::unit_x());
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Vec3::ZERO.normalized().is_none());
        assert_eq!(Vec3::ZERO.normalized_or(Vec3::unit_y()), Vec3::unit_y());
    }

    #[test]
    fn projection_recovers_component() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        let p = v.project_onto(Vec3::unit_x());
        assert!(approx_eq(p.x, 3.0, 1e-12));
        assert!(approx_eq(p.y, 0.0, 1e-12));
    }

    #[test]
    fn vec2_rotation_quarter_turn() {
        let v = Vec2::new(1.0, 0.0).rotated(std::f64::consts::FRAC_PI_2);
        assert!(approx_eq(v.x, 0.0, 1e-12));
        assert!(approx_eq(v.y, 1.0, 1e-12));
    }

    #[test]
    fn indexing_matches_fields() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
    }

    fn arb_vec3() -> impl Strategy<Value = Vec3> {
        (-1e3..1e3f64, -1e3..1e3f64, -1e3..1e3f64).prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    proptest! {
        #[test]
        fn prop_normalized_has_unit_length(v in arb_vec3()) {
            if let Some(n) = v.normalized() {
                prop_assert!((n.length() - 1.0).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_dot_symmetric(a in arb_vec3(), b in arb_vec3()) {
            prop_assert!((a.dot(b) - b.dot(a)).abs() < 1e-6);
        }

        #[test]
        fn prop_triangle_inequality(a in arb_vec3(), b in arb_vec3()) {
            prop_assert!((a + b).length() <= a.length() + b.length() + 1e-9);
        }

        #[test]
        fn prop_lerp_endpoints(a in arb_vec3(), b in arb_vec3()) {
            prop_assert!(a.lerp(b, 0.0).distance(a) < 1e-9);
            prop_assert!(a.lerp(b, 1.0).distance(b) < 1e-9);
        }
    }
}
