//! Discrete-time signal filters.
//!
//! The motion-platform washout algorithm (paper §3.4) is built from the
//! high-pass and low-pass stages defined here; the dashboard module uses the
//! rate limiter to model the finite slew rate of analog meters.

use serde::{Deserialize, Serialize};

/// First-order low-pass filter (exponential smoothing).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LowPass {
    cutoff_hz: f64,
    state: f64,
    initialized: bool,
}

impl LowPass {
    /// Creates a filter with the given cutoff frequency in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `cutoff_hz <= 0`.
    pub fn new(cutoff_hz: f64) -> LowPass {
        assert!(cutoff_hz > 0.0, "cutoff frequency must be positive");
        LowPass { cutoff_hz, state: 0.0, initialized: false }
    }

    /// Feeds one sample taken `dt` seconds after the previous one and returns
    /// the filtered value.
    pub fn update(&mut self, input: f64, dt: f64) -> f64 {
        if !self.initialized {
            self.state = input;
            self.initialized = true;
            return input;
        }
        let rc = 1.0 / (2.0 * std::f64::consts::PI * self.cutoff_hz);
        let alpha = dt / (rc + dt);
        self.state += alpha * (input - self.state);
        self.state
    }

    /// The most recent output value.
    pub fn value(&self) -> f64 {
        self.state
    }

    /// Resets the filter to an uninitialized state.
    pub fn reset(&mut self) {
        self.state = 0.0;
        self.initialized = false;
    }
}

/// First-order high-pass filter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HighPass {
    cutoff_hz: f64,
    prev_input: f64,
    state: f64,
    initialized: bool,
}

impl HighPass {
    /// Creates a filter with the given cutoff frequency in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `cutoff_hz <= 0`.
    pub fn new(cutoff_hz: f64) -> HighPass {
        assert!(cutoff_hz > 0.0, "cutoff frequency must be positive");
        HighPass { cutoff_hz, prev_input: 0.0, state: 0.0, initialized: false }
    }

    /// Feeds one sample taken `dt` seconds after the previous one and returns
    /// the filtered value.
    pub fn update(&mut self, input: f64, dt: f64) -> f64 {
        if !self.initialized {
            self.prev_input = input;
            self.state = 0.0;
            self.initialized = true;
            return 0.0;
        }
        let rc = 1.0 / (2.0 * std::f64::consts::PI * self.cutoff_hz);
        let alpha = rc / (rc + dt);
        self.state = alpha * (self.state + input - self.prev_input);
        self.prev_input = input;
        self.state
    }

    /// The most recent output value.
    pub fn value(&self) -> f64 {
        self.state
    }

    /// Resets the filter to an uninitialized state.
    pub fn reset(&mut self) {
        self.prev_input = 0.0;
        self.state = 0.0;
        self.initialized = false;
    }
}

/// Limits the rate of change of a signal to `max_rate` units per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateLimiter {
    max_rate: f64,
    state: f64,
    initialized: bool,
}

impl RateLimiter {
    /// Creates a limiter with the given maximum absolute rate (units/second).
    ///
    /// # Panics
    ///
    /// Panics if `max_rate <= 0`.
    pub fn new(max_rate: f64) -> RateLimiter {
        assert!(max_rate > 0.0, "max rate must be positive");
        RateLimiter { max_rate, state: 0.0, initialized: false }
    }

    /// Feeds one target sample `dt` seconds after the previous one.
    pub fn update(&mut self, target: f64, dt: f64) -> f64 {
        if !self.initialized {
            self.state = target;
            self.initialized = true;
            return target;
        }
        let max_delta = self.max_rate * dt;
        self.state = crate::interp::move_toward(self.state, target, max_delta);
        self.state
    }

    /// The most recent output value.
    pub fn value(&self) -> f64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_pass_converges_to_dc() {
        let mut f = LowPass::new(1.0);
        let mut y = 0.0;
        for _ in 0..10_000 {
            y = f.update(5.0, 0.01);
        }
        assert!((y - 5.0).abs() < 1e-6);
    }

    #[test]
    fn low_pass_attenuates_fast_signal_more_than_slow() {
        let measure = |freq: f64| {
            let mut f = LowPass::new(0.5);
            let dt = 0.001;
            let mut max_out: f64 = 0.0;
            for i in 0..20_000 {
                let t = i as f64 * dt;
                let out = f.update((2.0 * std::f64::consts::PI * freq * t).sin(), dt);
                if t > 10.0 {
                    max_out = max_out.max(out.abs());
                }
            }
            max_out
        };
        assert!(measure(10.0) < measure(0.05));
    }

    #[test]
    fn high_pass_blocks_dc() {
        let mut f = HighPass::new(1.0);
        let mut y = 1.0;
        for _ in 0..10_000 {
            y = f.update(5.0, 0.01);
        }
        assert!(y.abs() < 1e-3, "dc leaked through: {y}");
    }

    #[test]
    fn high_pass_passes_step_transient() {
        let mut f = HighPass::new(0.5);
        f.update(0.0, 0.01);
        let y = f.update(1.0, 0.01);
        assert!(y > 0.9, "step transient attenuated: {y}");
    }

    #[test]
    fn rate_limiter_caps_slope() {
        let mut r = RateLimiter::new(2.0);
        r.update(0.0, 0.1);
        let y = r.update(100.0, 0.1);
        assert!((y - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn negative_cutoff_rejected() {
        let _ = LowPass::new(-1.0);
    }
}
