//! Scalar interpolation helpers used by the motion platform and animation code.

/// Linear interpolation between `a` and `b` by factor `t` (not clamped).
///
/// ```
/// assert_eq!(sim_math::lerp(0.0, 10.0, 0.25), 2.5);
/// ```
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Smooth Hermite step: 0 below `edge0`, 1 above `edge1`, smooth in between.
///
/// # Panics
///
/// Panics if `edge0 >= edge1`.
pub fn smoothstep(edge0: f64, edge1: f64, x: f64) -> f64 {
    assert!(edge0 < edge1, "smoothstep requires edge0 < edge1");
    let t = ((x - edge0) / (edge1 - edge0)).clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

/// Cubic Hermite interpolation between `p0` (with outgoing tangent `m0`) and
/// `p1` (with incoming tangent `m1`) at parameter `t` in `[0, 1]`.
pub fn hermite(p0: f64, m0: f64, p1: f64, m1: f64, t: f64) -> f64 {
    let t2 = t * t;
    let t3 = t2 * t;
    (2.0 * t3 - 3.0 * t2 + 1.0) * p0
        + (t3 - 2.0 * t2 + t) * m0
        + (-2.0 * t3 + 3.0 * t2) * p1
        + (t3 - t2) * m1
}

/// Catmull–Rom spline through `p1`..`p2` with neighbouring control points
/// `p0` and `p3`, evaluated at `t` in `[0, 1]`.
///
/// Used by the scenario course to lay out the driving path between waypoints.
pub fn catmull_rom(p0: f64, p1: f64, p2: f64, p3: f64, t: f64) -> f64 {
    let m1 = (p2 - p0) * 0.5;
    let m2 = (p3 - p1) * 0.5;
    hermite(p1, m1, p2, m2, t)
}

/// Moves `current` toward `target` by at most `max_delta`, never overshooting.
pub fn move_toward(current: f64, target: f64, max_delta: f64) -> f64 {
    debug_assert!(max_delta >= 0.0);
    let delta = target - current;
    if delta.abs() <= max_delta {
        target
    } else {
        current + max_delta * delta.signum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(2.0, 4.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 4.0, 1.0), 4.0);
    }

    #[test]
    fn smoothstep_is_monotone_and_bounded() {
        let mut prev = -1.0;
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            let v = smoothstep(0.0, 1.0, x);
            assert!(v >= prev);
            assert!((0.0..=1.0).contains(&v));
            prev = v;
        }
    }

    #[test]
    fn hermite_hits_endpoints() {
        assert_eq!(hermite(1.0, 0.5, 3.0, -0.5, 0.0), 1.0);
        assert_eq!(hermite(1.0, 0.5, 3.0, -0.5, 1.0), 3.0);
    }

    #[test]
    fn catmull_rom_interpolates_control_points() {
        assert_eq!(catmull_rom(0.0, 1.0, 2.0, 3.0, 0.0), 1.0);
        assert_eq!(catmull_rom(0.0, 1.0, 2.0, 3.0, 1.0), 2.0);
    }

    #[test]
    fn move_toward_does_not_overshoot() {
        assert_eq!(move_toward(0.0, 10.0, 3.0), 3.0);
        assert_eq!(move_toward(9.5, 10.0, 3.0), 10.0);
        assert_eq!(move_toward(10.0, 0.0, 4.0), 6.0);
    }

    proptest! {
        #[test]
        fn prop_lerp_between_bounds(a in -100.0..100.0f64, b in -100.0..100.0f64, t in 0.0..1.0f64) {
            let v = lerp(a, b, t);
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }

        #[test]
        fn prop_move_toward_converges(a in -50.0..50.0f64, b in -50.0..50.0f64) {
            let mut x = a;
            for _ in 0..2000 {
                x = move_toward(x, b, 0.1);
            }
            prop_assert!((x - b).abs() < 1e-9);
        }
    }
}
