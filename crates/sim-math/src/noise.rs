//! Deterministic 1D value noise.
//!
//! The motion-platform vibration generator (paper §3.4: "constantly generates a
//! random up-and-down vibration") needs a smooth, repeatable noise source; this
//! module provides one without pulling the `rand` dependency into `sim-math`.

use serde::{Deserialize, Serialize};

/// Smooth 1D value noise with a deterministic seed.
///
/// Noise values are in `[-1, 1]` and vary smoothly with the input coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueNoise {
    seed: u64,
}

impl ValueNoise {
    /// Creates a noise source from a seed.
    pub fn new(seed: u64) -> ValueNoise {
        ValueNoise { seed }
    }

    /// Hash an integer lattice coordinate into `[-1, 1]`.
    fn lattice(&self, i: i64) -> f64 {
        // SplitMix64-style integer hash.
        let mut z = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Map the top 53 bits to [0, 1), then to [-1, 1].
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        unit * 2.0 - 1.0
    }

    /// Samples the noise at coordinate `x` (smoothly interpolated).
    pub fn sample(&self, x: f64) -> f64 {
        let i = x.floor() as i64;
        let frac = x - x.floor();
        let a = self.lattice(i);
        let b = self.lattice(i + 1);
        let t = frac * frac * (3.0 - 2.0 * frac);
        a + (b - a) * t
    }

    /// Samples fractal (multi-octave) noise for a rougher signal.
    ///
    /// # Panics
    ///
    /// Panics if `octaves == 0`.
    pub fn fractal(&self, x: f64, octaves: u32) -> f64 {
        assert!(octaves > 0, "at least one octave required");
        let mut amplitude = 1.0;
        let mut frequency = 1.0;
        let mut sum = 0.0;
        let mut norm = 0.0;
        for _ in 0..octaves {
            sum += amplitude * self.sample(x * frequency);
            norm += amplitude;
            amplitude *= 0.5;
            frequency *= 2.0;
        }
        sum / norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = ValueNoise::new(42);
        let b = ValueNoise::new(42);
        for i in 0..100 {
            let x = i as f64 * 0.37;
            assert_eq!(a.sample(x), b.sample(x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ValueNoise::new(1);
        let b = ValueNoise::new(2);
        let differs = (0..100).any(|i| a.sample(i as f64 * 0.5) != b.sample(i as f64 * 0.5));
        assert!(differs);
    }

    #[test]
    fn bounded_output() {
        let n = ValueNoise::new(7);
        for i in 0..10_000 {
            let v = n.sample(i as f64 * 0.0137);
            assert!((-1.0..=1.0).contains(&v), "out of range: {v}");
            let f = n.fractal(i as f64 * 0.0137, 4);
            assert!((-1.0..=1.0).contains(&f), "fractal out of range: {f}");
        }
    }

    #[test]
    fn continuity_across_lattice_points() {
        let n = ValueNoise::new(99);
        for i in 0..100 {
            let x = i as f64;
            let left = n.sample(x - 1e-9);
            let right = n.sample(x + 1e-9);
            assert!((left - right).abs() < 1e-6, "discontinuity at {x}");
        }
    }

    #[test]
    #[should_panic]
    fn fractal_zero_octaves_panics() {
        let _ = ValueNoise::new(0).fractal(1.0, 0);
    }
}
