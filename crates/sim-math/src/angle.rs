//! Angle newtypes and normalization helpers.
//!
//! The instructor Status window (paper Figure 5) reports the boom swing angle
//! and raise angle in degrees while the dynamics module works in radians; the
//! [`Deg`] / [`Rad`] newtypes keep the two from being mixed up.

use serde::{Deserialize, Serialize};
use std::f64::consts::{PI, TAU};
use std::fmt;

/// An angle expressed in degrees.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Deg(pub f64);

/// An angle expressed in radians.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Rad(pub f64);

impl Deg {
    /// Converts to radians.
    pub fn to_rad(self) -> Rad {
        Rad(self.0.to_radians())
    }

    /// Raw value in degrees.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Rad {
    /// Converts to degrees.
    pub fn to_deg(self) -> Deg {
        Deg(self.0.to_degrees())
    }

    /// Raw value in radians.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns the angle wrapped into `(-pi, pi]`.
    pub fn wrapped(self) -> Rad {
        Rad(wrap_to_pi(self.0))
    }
}

impl From<Deg> for Rad {
    fn from(d: Deg) -> Rad {
        d.to_rad()
    }
}

impl From<Rad> for Deg {
    fn from(r: Rad) -> Deg {
        r.to_deg()
    }
}

impl fmt::Display for Deg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}°", self.0)
    }
}

impl fmt::Display for Rad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} rad", self.0)
    }
}

/// Wraps an angle in radians into the half-open interval `(-pi, pi]`.
///
/// ```
/// use sim_math::wrap_to_pi;
/// use std::f64::consts::PI;
/// assert!((wrap_to_pi(3.0 * PI) - PI).abs() < 1e-12);
/// ```
pub fn wrap_to_pi(angle: f64) -> f64 {
    let mut a = (angle + PI) % TAU;
    if a <= 0.0 {
        a += TAU;
    }
    a - PI
}

/// Normalizes an angle in radians into `[0, 2*pi)`.
pub fn normalize_angle(angle: f64) -> f64 {
    let mut a = angle % TAU;
    if a < 0.0 {
        a += TAU;
    }
    a
}

/// Shortest signed angular difference `b - a`, wrapped into `(-pi, pi]`.
pub fn angle_diff(a: f64, b: f64) -> f64 {
    wrap_to_pi(b - a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn deg_rad_roundtrip() {
        let d = Deg(123.456);
        let back: Deg = Rad::from(d).into();
        assert!(approx_eq(d.0, back.0, 1e-9));
    }

    #[test]
    fn wrap_to_pi_range() {
        for k in -20..20 {
            let a = wrap_to_pi(k as f64 * 1.3);
            assert!(a > -PI - 1e-12 && a <= PI + 1e-12);
        }
    }

    #[test]
    fn normalize_angle_range() {
        for k in -20..20 {
            let a = normalize_angle(k as f64 * 2.1);
            assert!((0.0..TAU + 1e-12).contains(&a));
        }
    }

    #[test]
    fn angle_diff_shortest_path() {
        let d = angle_diff(0.1, TAU - 0.1);
        assert!(approx_eq(d, -0.2, 1e-9));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Deg(45.0)), "45.00°");
        assert!(format!("{}", Rad(1.0)).contains("rad"));
    }
}
