//! Small, self-contained 3D math substrate for the COD mobile-crane simulator.
//!
//! The simulator reproduction deliberately avoids external linear-algebra
//! crates; every other crate in the workspace (physics, rendering, motion
//! platform) builds on the primitives defined here.
//!
//! # Quick example
//!
//! ```
//! use sim_math::{Vec3, Quat, Transform};
//!
//! let boom_tip = Vec3::new(0.0, 10.0, 0.0);
//! let slew = Quat::from_axis_angle(Vec3::unit_y(), 90f64.to_radians());
//! let t = Transform::new(Vec3::new(1.0, 0.0, 0.0), slew);
//! let world = t.apply(boom_tip);
//! assert!((world.x - 1.0).abs() < 1e-9);
//! ```

pub mod angle;
pub mod batch;
pub mod filter;
pub mod hash;
pub mod integrate;
pub mod interp;
pub mod mat;
pub mod noise;
pub mod quat;
pub mod transform;
pub mod vec;

pub use angle::{normalize_angle, wrap_to_pi, Deg, Rad};
pub use batch::{rk4_step_batch, semi_implicit_euler_step_batch};
pub use filter::{HighPass, LowPass, RateLimiter};
pub use hash::Fnv1a;
pub use integrate::{rk4_step, semi_implicit_euler_step};
pub use interp::{catmull_rom, hermite, lerp, smoothstep};
pub use mat::{Mat3, Mat4};
pub use noise::ValueNoise;
pub use quat::Quat;
pub use transform::Transform;
pub use vec::{Vec2, Vec3};

/// Numerical tolerance used by approximate comparisons throughout the workspace.
pub const EPSILON: f64 = 1.0e-9;

/// Returns `true` when two floating point numbers are within `tol` of each other.
///
/// ```
/// assert!(sim_math::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!sim_math::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Clamps `x` into the inclusive range `[lo, hi]`.
///
/// # Panics
///
/// Panics if `lo > hi`.
///
/// ```
/// assert_eq!(sim_math::clamp(5.0, 0.0, 1.0), 1.0);
/// ```
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    assert!(lo <= hi, "clamp called with lo > hi");
    x.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_respects_tolerance() {
        assert!(approx_eq(0.0, 0.0, 0.0));
        assert!(approx_eq(1.0, 1.0 + 5e-10, EPSILON));
        assert!(!approx_eq(1.0, 1.0 + 5e-9, EPSILON));
    }

    #[test]
    fn clamp_bounds() {
        assert_eq!(clamp(-1.0, 0.0, 2.0), 0.0);
        assert_eq!(clamp(3.0, 0.0, 2.0), 2.0);
        assert_eq!(clamp(1.5, 0.0, 2.0), 1.5);
    }

    #[test]
    #[should_panic]
    fn clamp_panics_on_inverted_range() {
        let _ = clamp(0.0, 2.0, 1.0);
    }
}
